//! The fleet coordinator: drives a grid sweep through a pool of worker
//! processes, survives their deaths, and merges durable per-cell results
//! into a [`GridOutcome`] bitwise identical to an uninterrupted
//! in-process [`crate::grid::grid_search`].
//!
//! Fault-tolerance model:
//!
//! - every state transition goes through the fsynced [`Journal`], so a
//!   coordinator restart replays it and re-runs only unfinished cells;
//! - each dispatch is a *lease* with a deadline, extended by worker
//!   heartbeats; a silent worker (hung, wedged, or partitioned) is
//!   SIGKILLed and its cell re-dispatched — per-cell checkpoints mean
//!   the retry resumes rather than restarts;
//! - attempts are capped with exponential backoff between them; the
//!   attempt counter survives restarts because it is replayed from
//!   `lease` events;
//! - a result only counts once its sealed file is durable (workers
//!   report `done` strictly after the atomic rename), so the merge reads
//!   exactly the set of first durable results.

use super::fsio::read_sealed;
use super::journal::{CellState, Event, Journal, JournalError};
use super::proto::{CellSpec, Request, Response};
use super::{codec, result_path};
use crate::fleet::registry;
use crate::grid::{score_results, GridError, GridOutcome};
use crate::trainer::RunResult;
use std::fmt;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};
use yf_wire::binary::{self, RawFrame};

/// What to sweep: the grid axes plus per-cell run settings, with the
/// workload and optimizer as registry names so worker processes can
/// rebuild them.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Registry name of the workload (see [`registry::task_builder`]).
    pub task: String,
    /// Registry name of the optimizer (see [`registry::opt_builder`]).
    pub opt: String,
    /// Grid values (learning rates / lr factors).
    pub values: Vec<f32>,
    /// Seeds averaged per value.
    pub seeds: Vec<u64>,
    /// Training iterations per cell.
    pub iters: usize,
    /// Validate every this many iterations (0 disables).
    pub eval_every: usize,
    /// Smoothing window for scoring (Section 5.1).
    pub window: usize,
}

/// How worker processes talk to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerTransport {
    /// Line JSON on the worker's stdin/stdout pipes.
    #[default]
    Stdio,
    /// The same line JSON over a TCP socket: the coordinator listens on
    /// an ephemeral loopback port and each worker is spawned with
    /// `--transport tcp --connect <addr>`. The protocol, scheduling, and
    /// merged outcome are identical to stdio — only the byte channel
    /// differs.
    Tcp,
}

/// How to run the sweep: pool size, lease policy, and retry policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker processes to keep alive.
    pub workers: usize,
    /// The coordinator ↔ worker byte channel.
    pub transport: WorkerTransport,
    /// Dispatch attempts per cell before the sweep fails.
    pub max_attempts: u32,
    /// A leased cell whose worker stays silent this long is presumed
    /// wedged: the worker is killed and the cell re-dispatched.
    pub lease_timeout: Duration,
    /// Base delay before retrying a failed cell (doubles per attempt).
    pub backoff_base: Duration,
    /// Steps between durable checkpoints inside each cell (0 disables
    /// checkpointing; crashes then restart cells from scratch).
    pub checkpoint_every: usize,
    /// `YF_FAULT` spec injected into spawned workers (fault-injection
    /// tests only; `None` runs clean).
    pub fault_spec: Option<String>,
    /// `YF_CHAOS` spec for a [`yf_serve::ChaosProxy`] interposed between
    /// TCP workers and the coordinator (chaos tests only; `None` runs
    /// clean, and the knob is ignored under stdio transport). Chaos
    /// frame counters are per direction and global across connections,
    /// so deterministic schedules need `workers: 1`.
    pub chaos_spec: Option<String>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 2,
            transport: WorkerTransport::default(),
            max_attempts: 3,
            lease_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(20),
            checkpoint_every: 20,
            fault_spec: None,
            chaos_spec: None,
        }
    }
}

/// A finished sweep plus its recovery accounting.
#[derive(Debug)]
pub struct FleetReport {
    /// The merged outcome — bitwise identical to the in-process sweep.
    pub outcome: GridOutcome,
    /// Cells whose durable results predated this coordinator run.
    pub recovered_results: usize,
    /// Cells executed (dispatched at least once) by this run.
    pub executed_cells: usize,
    /// Re-dispatches beyond each cell's first attempt, this run.
    pub retries: u32,
}

/// Why a sweep could not complete.
#[derive(Debug)]
pub enum FleetError {
    /// Filesystem failure.
    Io(io::Error),
    /// Journal failure (I/O or corruption).
    Journal(JournalError),
    /// The grid inputs or merged results were inconsistent.
    Grid(GridError),
    /// Unknown workload/optimizer name.
    Registry(String),
    /// The journal on disk describes a different sweep than `spec`.
    SpecMismatch(String),
    /// A cell exhausted its attempts.
    JobFailed {
        /// The cell that kept failing.
        cell: usize,
        /// Attempts consumed.
        attempts: u32,
        /// The last recorded failure.
        error: String,
    },
    /// A worker process could not be spawned or driven.
    Worker(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet i/o: {e}"),
            FleetError::Journal(e) => write!(f, "{e}"),
            FleetError::Grid(e) => write!(f, "{e}"),
            FleetError::Registry(m) => write!(f, "{m}"),
            FleetError::SpecMismatch(m) => write!(f, "journal/spec mismatch: {m}"),
            FleetError::JobFailed {
                cell,
                attempts,
                error,
            } => write!(f, "cell {cell} failed after {attempts} attempts: {error}"),
            FleetError::Worker(m) => write!(f, "worker: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<io::Error> for FleetError {
    fn from(e: io::Error) -> Self {
        FleetError::Io(e)
    }
}

impl From<JournalError> for FleetError {
    fn from(e: JournalError) -> Self {
        FleetError::Journal(e)
    }
}

impl From<GridError> for FleetError {
    fn from(e: GridError) -> Self {
        FleetError::Grid(e)
    }
}

/// Runs (or resumes) the sweep described by `spec` under `cfg`, with all
/// durable state in `dir` and workers launched from `worker_bin`.
///
/// Calling this again with the same `dir` after any interruption —
/// coordinator crash, SIGKILLed workers, torn files — resumes from the
/// journal: done cells are never re-run, in-flight cells resume from
/// their last sealed checkpoint, and the merged [`GridOutcome`] is
/// bitwise identical to what the uninterrupted in-process sweep returns.
///
/// # Errors
///
/// See [`FleetError`]; on [`FleetError::JobFailed`] the journal and all
/// durable results remain for a later resume.
pub fn run_fleet(
    spec: &FleetSpec,
    cfg: &FleetConfig,
    dir: &Path,
    worker_bin: &Path,
) -> Result<FleetReport, FleetError> {
    if spec.values.is_empty() {
        return Err(GridError::EmptyGrid.into());
    }
    if spec.seeds.is_empty() {
        return Err(GridError::NoSeeds.into());
    }
    if registry::task_builder(&spec.task).is_none() {
        return Err(FleetError::Registry(format!(
            "unknown task {:?}",
            spec.task
        )));
    }
    if registry::opt_builder(&spec.opt).is_none() {
        return Err(FleetError::Registry(format!(
            "unknown optimizer {:?}",
            spec.opt
        )));
    }
    std::fs::create_dir_all(dir)?;
    let journal = Journal::open(dir);
    let mut cells = recover_cells(spec, &journal)?;
    let recovered_results = verify_durable_results(dir, &mut cells);

    let mut executed_cells = 0;
    let mut retries = 0;
    if cells.iter().any(|c| !c.done) {
        let mut pool = Pool::spawn(cfg, worker_bin)?;
        let run = drive(spec, cfg, dir, &journal, &mut cells, &mut pool);
        pool.shutdown();
        let (executed, redispatched) = run?;
        executed_cells = executed;
        retries = redispatched;
    }

    let results = collect_results(dir, cells.len())?;
    let outcome = score_results(&spec.values, &spec.seeds, spec.window, &results)?;
    Ok(FleetReport {
        outcome,
        recovered_results,
        executed_cells,
        retries,
    })
}

/// Replays the journal against `spec`: an empty journal enqueues every
/// cell; an existing one must describe the same grid.
fn recover_cells(spec: &FleetSpec, journal: &Journal) -> Result<Vec<CellState>, FleetError> {
    let grid: Vec<(f32, u64)> = crate::grid::grid_cells(&spec.values, &spec.seeds);
    let replay = journal.replay()?;
    if replay.cells.is_empty() {
        for (cell, &(value, seed)) in grid.iter().enumerate() {
            journal.append(&Event::Job {
                cell,
                value_bits: value.to_bits(),
                seed,
            })?;
        }
        return Ok(grid
            .iter()
            .map(|&(value, seed)| CellState {
                value_bits: value.to_bits(),
                seed,
                attempts: 0,
                done: false,
                last_error: None,
            })
            .collect());
    }
    if replay.cells.len() != grid.len() {
        return Err(FleetError::SpecMismatch(format!(
            "journal has {} cells, spec describes {}",
            replay.cells.len(),
            grid.len()
        )));
    }
    for (cell, (state, &(value, seed))) in replay.cells.iter().zip(&grid).enumerate() {
        if state.value_bits != value.to_bits() || state.seed != seed {
            return Err(FleetError::SpecMismatch(format!(
                "cell {cell} was enqueued as (value bits {:08x}, seed {}), spec says ({:08x}, {seed})",
                state.value_bits,
                state.seed,
                value.to_bits(),
            )));
        }
    }
    Ok(replay.cells)
}

/// Demotes `done` cells whose result file is missing or torn — the
/// journal is the intent log, but the sealed result is the truth.
/// Returns how many durable results were recovered.
fn verify_durable_results(dir: &Path, cells: &mut [CellState]) -> usize {
    let mut recovered = 0;
    for (cell, state) in cells.iter_mut().enumerate() {
        if !state.done {
            continue;
        }
        let ok = read_sealed(&result_path(dir, cell))
            .ok()
            .and_then(|text| codec::decode_result(&text).ok())
            .is_some();
        if ok {
            recovered += 1;
        } else {
            eprintln!(
                "fleet: cell {cell} journaled done but its result is missing or torn; re-running"
            );
            state.done = false;
        }
    }
    recovered
}

fn collect_results(dir: &Path, cells: usize) -> Result<Vec<RunResult>, FleetError> {
    (0..cells)
        .map(|cell| {
            let path = result_path(dir, cell);
            let text = read_sealed(&path)
                .map_err(|e| FleetError::Worker(format!("cell {cell} result: {e}")))?;
            codec::decode_result(&text)
                .map_err(|e| FleetError::Worker(format!("cell {cell} result: {e}")))
        })
        .collect()
}

/// A message from a worker's reader thread, tagged with the worker slot
/// and its spawn generation (so messages from a killed worker's drained
/// pipe can't be attributed to its replacement).
type PoolMsg = (usize, u64, WorkerMsg);

enum WorkerMsg {
    Resp(Response),
    Gone,
}

struct WorkerProc {
    child: Child,
    /// The request channel into the worker: its stdin pipe, or the
    /// write half of its TCP connection.
    input: Box<dyn Write + Send>,
    generation: u64,
    /// The leased cell and its deadline, when busy.
    lease: Option<(usize, Instant)>,
}

struct Pool {
    workers: Vec<WorkerProc>,
    tx: Sender<PoolMsg>,
    rx: Receiver<PoolMsg>,
    worker_bin: PathBuf,
    fault_spec: Option<String>,
    /// Present in TCP mode: the loopback listener workers dial back to.
    listener: Option<TcpListener>,
    /// The address workers actually dial: the chaos proxy when one is
    /// interposed, otherwise the listener itself.
    worker_addr: Option<SocketAddr>,
    /// Keeps the interposed chaos proxy's pump threads alive for the
    /// pool's lifetime.
    _chaos: Option<yf_serve::ChaosProxy>,
    next_generation: u64,
}

impl Pool {
    fn spawn(cfg: &FleetConfig, worker_bin: &Path) -> Result<Pool, FleetError> {
        let (tx, rx) = channel();
        let listener = match cfg.transport {
            WorkerTransport::Stdio => None,
            WorkerTransport::Tcp => {
                let listener = TcpListener::bind("127.0.0.1:0")
                    .map_err(|e| FleetError::Worker(format!("binding fleet listener: {e}")))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| FleetError::Worker(format!("fleet listener: {e}")))?;
                Some(listener)
            }
        };
        let (worker_addr, chaos) = match &listener {
            None => (None, None),
            Some(listener) => {
                let upstream = listener
                    .local_addr()
                    .map_err(|e| FleetError::Worker(format!("fleet listener: {e}")))?;
                match &cfg.chaos_spec {
                    None => (Some(upstream), None),
                    Some(text) => {
                        let spec = yf_serve::ChaosSpec::parse(text)
                            .map_err(|e| FleetError::Worker(format!("YF_CHAOS: {e}")))?;
                        let proxy = yf_serve::ChaosProxy::start(upstream, spec).map_err(|e| {
                            FleetError::Worker(format!("starting chaos proxy: {e}"))
                        })?;
                        (Some(proxy.local_addr()), Some(proxy))
                    }
                }
            }
        };
        let mut pool = Pool {
            workers: Vec::new(),
            tx,
            rx,
            worker_bin: worker_bin.to_path_buf(),
            fault_spec: cfg.fault_spec.clone(),
            listener,
            worker_addr,
            _chaos: chaos,
            next_generation: 0,
        };
        for slot in 0..cfg.workers.max(1) {
            let worker = pool.launch(slot)?;
            pool.workers.push(worker);
        }
        Ok(pool)
    }

    fn launch(&mut self, slot: usize) -> Result<WorkerProc, FleetError> {
        let generation = self.next_generation;
        self.next_generation += 1;
        let mut command = Command::new(&self.worker_bin);
        match &self.listener {
            None => {
                command.stdin(Stdio::piped()).stdout(Stdio::piped());
            }
            Some(_) => {
                let addr = self
                    .worker_addr
                    .expect("tcp pools always record a dial-back address");
                command
                    .args(["--transport", "tcp", "--connect", &addr.to_string()])
                    .stdin(Stdio::null())
                    .stdout(Stdio::inherit());
            }
        }
        command.stderr(Stdio::inherit());
        match &self.fault_spec {
            Some(spec) => command.env("YF_FAULT", spec),
            None => command.env_remove("YF_FAULT"),
        };
        let mut child = command.spawn().map_err(|e| {
            FleetError::Worker(format!("spawning {}: {e}", self.worker_bin.display()))
        })?;
        let (input, output): (Box<dyn Write + Send>, Box<dyn Read + Send>) =
            match &self.listener {
                None => (
                    Box::new(child.stdin.take().expect("piped stdin")),
                    Box::new(child.stdout.take().expect("piped stdout")),
                ),
                Some(listener) => {
                    let stream = accept_worker(listener, &mut child)?;
                    (
                        Box::new(stream.try_clone().map_err(|e| {
                            FleetError::Worker(format!("cloning worker socket: {e}"))
                        })?),
                        Box::new(stream),
                    )
                }
            };
        let tx = self.tx.clone();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(output);
            loop {
                // Mixed-dialect read: the fleet protocol is JSON-only,
                // so a binary wire frame from a confused peer is
                // dropped as a typed protocol error, not UTF-8 noise.
                let line = match binary::read_frame(&mut reader) {
                    Ok(None) | Err(_) => break,
                    Ok(Some(RawFrame::Binary(_))) => {
                        eprintln!(
                            "fleet: worker {slot}: binary wire frame on the \
                             fleet link; dropping"
                        );
                        continue;
                    }
                    Ok(Some(RawFrame::Line(l))) => l,
                };
                if line.trim().is_empty() {
                    continue;
                }
                match Response::from_line(&line) {
                    Ok(resp) => {
                        if tx.send((slot, generation, WorkerMsg::Resp(resp))).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        eprintln!("fleet: worker {slot}: unparseable line ({e}); dropping");
                    }
                }
            }
            let _ = tx.send((slot, generation, WorkerMsg::Gone));
        });
        Ok(WorkerProc {
            child,
            input,
            generation,
            lease: None,
        })
    }

    /// Kills and replaces the worker in `slot`; its old generation's
    /// messages will be ignored from here on.
    fn replace(&mut self, slot: usize) -> Result<(), FleetError> {
        let _ = self.workers[slot].child.kill();
        let _ = self.workers[slot].child.wait();
        self.workers[slot] = self.launch(slot)?;
        Ok(())
    }

    fn shutdown(&mut self) {
        for worker in &mut self.workers {
            let _ = writeln!(worker.input, "{}", Request::Shutdown.to_line());
            let _ = worker.input.flush();
        }
        for worker in &mut self.workers {
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match worker.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = worker.child.kill();
                        let _ = worker.child.wait();
                        break;
                    }
                }
            }
        }
    }
}

/// Waits for the worker just spawned to dial the coordinator back. Only
/// processes this coordinator spawned know the ephemeral port, and
/// launches are strictly sequential (a replaced worker is killed before
/// its successor spawns), so the next connection is the new worker's. A
/// worker that dies before connecting — or never connects within the
/// deadline — is a spawn failure.
fn accept_worker(listener: &TcpListener, child: &mut Child) -> Result<TcpStream, FleetError> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(FleetError::Worker(format!(
                        "worker exited before connecting ({status})"
                    )));
                }
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(FleetError::Worker(
                        "worker never connected back over tcp".to_string(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(FleetError::Worker(format!("accepting worker: {e}"))),
        }
    }
}

/// Per-cell scheduler view layered over the journal's [`CellState`].
struct Sched {
    not_before: Instant,
    leased: bool,
}

#[allow(clippy::too_many_lines)]
fn drive(
    spec: &FleetSpec,
    cfg: &FleetConfig,
    dir: &Path,
    journal: &Journal,
    cells: &mut [CellState],
    pool: &mut Pool,
) -> Result<(usize, u32), FleetError> {
    let now = Instant::now();
    let mut sched: Vec<Sched> = cells
        .iter()
        .map(|_| Sched {
            not_before: now,
            leased: false,
        })
        .collect();
    let mut remaining = cells.iter().filter(|c| !c.done).count();
    let mut executed = vec![false; cells.len()];
    let mut retries = 0u32;

    // Records a failed attempt: journals it, applies capped exponential
    // backoff, or reports the cell permanently failed.
    let fail_attempt = |cells: &mut [CellState],
                        sched: &mut [Sched],
                        journal: &Journal,
                        cell: usize,
                        error: String|
     -> Result<(), FleetError> {
        let attempt = cells[cell].attempts.saturating_sub(1);
        journal.append(&Event::Fail {
            cell,
            attempt,
            error: error.clone(),
        })?;
        cells[cell].last_error = Some(error.clone());
        sched[cell].leased = false;
        if cells[cell].attempts >= cfg.max_attempts {
            return Err(FleetError::JobFailed {
                cell,
                attempts: cells[cell].attempts,
                error,
            });
        }
        let exp = cells[cell].attempts.saturating_sub(1).min(16);
        sched[cell].not_before = Instant::now() + cfg.backoff_base * 2u32.pow(exp);
        Ok(())
    };

    while remaining > 0 {
        // Dispatch every idle worker onto the lowest ready cell.
        for slot in 0..pool.workers.len() {
            if pool.workers[slot].lease.is_some() {
                continue;
            }
            let now = Instant::now();
            let Some(cell) = cells
                .iter()
                .zip(&sched)
                .position(|(c, s)| !c.done && !s.leased && s.not_before <= now)
            else {
                continue;
            };
            if cells[cell].attempts >= cfg.max_attempts {
                // Exhausted cells fail the sweep as soon as they surface.
                return Err(FleetError::JobFailed {
                    cell,
                    attempts: cells[cell].attempts,
                    error: cells[cell]
                        .last_error
                        .clone()
                        .unwrap_or_else(|| "attempts exhausted".to_string()),
                });
            }
            let attempt = cells[cell].attempts;
            journal.append(&Event::Lease {
                cell,
                worker: slot,
                attempt,
            })?;
            cells[cell].attempts += 1;
            if executed[cell] {
                retries += 1;
            }
            executed[cell] = true;
            sched[cell].leased = true;
            let request = Request::Run(CellSpec {
                cell,
                task: spec.task.clone(),
                opt: spec.opt.clone(),
                value: f32::from_bits(cells[cell].value_bits),
                seed: cells[cell].seed,
                iters: spec.iters,
                eval_every: spec.eval_every,
                checkpoint_every: cfg.checkpoint_every,
                attempt,
                dir: dir.to_string_lossy().into_owned(),
            });
            let worker = &mut pool.workers[slot];
            worker.lease = Some((cell, Instant::now() + cfg.lease_timeout));
            if writeln!(worker.input, "{}", request.to_line())
                .and_then(|()| worker.input.flush())
                .is_err()
            {
                // The worker died between dispatches; its reader thread
                // will deliver `Gone` and the lease machinery below will
                // retry the cell on the replacement.
                continue;
            }
        }

        // Reap expired leases: kill the silent worker, fail the attempt.
        let now = Instant::now();
        for slot in 0..pool.workers.len() {
            let Some((cell, deadline)) = pool.workers[slot].lease else {
                continue;
            };
            if now < deadline {
                continue;
            }
            eprintln!("fleet: worker {slot} exceeded its lease on cell {cell}; killing it");
            pool.workers[slot].lease = None;
            pool.replace(slot)?;
            fail_attempt(
                cells,
                &mut sched,
                journal,
                cell,
                "lease expired".to_string(),
            )?;
        }

        // Drain one message (or sleep briefly).
        let msg = match pool.rx.recv_timeout(Duration::from_millis(20)) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(FleetError::Worker("all reader threads gone".to_string()))
            }
        };
        let (slot, generation, body) = msg;
        if pool.workers[slot].generation != generation {
            continue; // Stale message from a replaced worker.
        }
        match body {
            WorkerMsg::Resp(Response::Step { cell, .. }) => {
                if let Some((leased, _)) = pool.workers[slot].lease {
                    if leased == cell {
                        pool.workers[slot].lease = Some((cell, Instant::now() + cfg.lease_timeout));
                    }
                }
            }
            WorkerMsg::Resp(Response::Done { cell }) => {
                if pool.workers[slot].lease.map(|(c, _)| c) == Some(cell) {
                    pool.workers[slot].lease = None;
                }
                sched[cell].leased = false;
                if !cells[cell].done {
                    // First durable result wins; the journal records it
                    // only after the worker made the file durable.
                    journal.append(&Event::Done { cell })?;
                    cells[cell].done = true;
                    remaining -= 1;
                }
            }
            WorkerMsg::Resp(Response::Error { cell, message }) => {
                if pool.workers[slot].lease.map(|(c, _)| c) == Some(cell) {
                    pool.workers[slot].lease = None;
                }
                if !cells[cell].done {
                    fail_attempt(cells, &mut sched, journal, cell, message)?;
                }
            }
            WorkerMsg::Gone => {
                let lease = pool.workers[slot].lease.take();
                pool.replace(slot)?;
                if let Some((cell, _)) = lease {
                    if !cells[cell].done {
                        fail_attempt(
                            cells,
                            &mut sched,
                            journal,
                            cell,
                            "worker process died".to_string(),
                        )?;
                    }
                }
            }
        }
    }
    Ok((executed.iter().filter(|&&e| e).count(), retries))
}
