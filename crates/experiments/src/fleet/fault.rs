//! Deterministic fault injection for the fleet worker loop.
//!
//! A [`FaultPlan`] arms exactly one fault, parsed from the `YF_FAULT`
//! environment variable as `kind:cell:step[:attempt]`:
//!
//! - `panic:3:40` — panic inside the training loop of cell 3 at step 40;
//! - `hang:3:40` — stop making progress (sleep forever) so the
//!   coordinator's lease timeout must reap the worker;
//! - `kill:3:40` — die by SIGKILL, the no-cleanup crash;
//! - `torn:3:40` — write the step-40 checkpoint of cell 3 truncated and
//!   unsealed (simulating a pre-atomic-write crash), then die.
//!
//! Faults are keyed on the dispatch *attempt* (default 0), so an armed
//! fault fires exactly once: the coordinator's re-dispatch carries
//! attempt 1 and runs clean. That makes every fault-injection test
//! deterministic — same crash site, same recovery path, every run.

use std::fmt;

/// Which failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the training loop.
    Panic,
    /// Stop making progress until killed (exercises lease timeouts).
    Hang,
    /// Die by SIGKILL.
    Kill,
    /// Write a truncated, unsealed checkpoint, then die.
    Torn,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "hang" => Some(FaultKind::Hang),
            "kill" => Some(FaultKind::Kill),
            "torn" => Some(FaultKind::Torn),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Panic => "panic",
            FaultKind::Hang => "hang",
            FaultKind::Kill => "kill",
            FaultKind::Torn => "torn",
        })
    }
}

/// One armed fault: fires when the worker reaches `(cell, step)` on
/// dispatch attempt `attempt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The failure to inject.
    pub kind: FaultKind,
    /// Grid cell index the fault targets.
    pub cell: usize,
    /// 0-based training step at which it fires ([`FaultKind::Torn`]
    /// fires at the checkpoint written after this step completes).
    pub step: u64,
    /// Dispatch attempt it fires on (default 0 — the first try).
    pub attempt: u32,
}

impl FaultPlan {
    /// Parses `kind:cell:step[:attempt]`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 && parts.len() != 4 {
            return Err(format!(
                "YF_FAULT {spec:?}: expected kind:cell:step[:attempt]"
            ));
        }
        let kind = FaultKind::parse(parts[0])
            .ok_or_else(|| format!("YF_FAULT {spec:?}: unknown kind {:?}", parts[0]))?;
        let cell = parts[1]
            .parse()
            .map_err(|_| format!("YF_FAULT {spec:?}: bad cell {:?}", parts[1]))?;
        let step = parts[2]
            .parse()
            .map_err(|_| format!("YF_FAULT {spec:?}: bad step {:?}", parts[2]))?;
        let attempt = match parts.get(3) {
            Some(a) => a
                .parse()
                .map_err(|_| format!("YF_FAULT {spec:?}: bad attempt {a:?}"))?,
            None => 0,
        };
        Ok(FaultPlan {
            kind,
            cell,
            step,
            attempt,
        })
    }

    /// Reads `YF_FAULT`; unset means no fault, a malformed value is an
    /// error (a fault harness must never silently run clean).
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("YF_FAULT") {
            Ok(spec) if spec.is_empty() => Ok(None),
            Ok(spec) => FaultPlan::parse(&spec).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// Whether this fault fires at `(kind, cell, step, attempt)`.
    pub fn fires(&self, kind: FaultKind, cell: usize, step: u64, attempt: u32) -> bool {
        self.kind == kind && self.cell == cell && self.step == step && self.attempt == attempt
    }

    /// The `kind:cell:step:attempt` spec string for this plan.
    pub fn spec(&self) -> String {
        format!("{}:{}:{}:{}", self.kind, self.cell, self.step, self.attempt)
    }
}

/// Terminates the current process with SIGKILL semantics: no unwinding,
/// no destructors, no flushing — the harshest crash the coordinator must
/// tolerate. Tries a real `kill -9` of the current pid first (so the
/// exit status is the genuine signal), falling back to `abort`.
pub fn die_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    // If `kill` is unavailable the fallback still dies without cleanup.
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_specs_with_and_without_attempt() {
        let p = FaultPlan::parse("kill:3:40").unwrap();
        assert_eq!(
            p,
            FaultPlan {
                kind: FaultKind::Kill,
                cell: 3,
                step: 40,
                attempt: 0
            }
        );
        assert!(p.fires(FaultKind::Kill, 3, 40, 0));
        assert!(!p.fires(FaultKind::Kill, 3, 40, 1), "retries run clean");
        assert!(!p.fires(FaultKind::Panic, 3, 40, 0));
        let q = FaultPlan::parse("torn:0:10:2").unwrap();
        assert_eq!(q.attempt, 2);
        assert_eq!(FaultPlan::parse(&q.spec()).unwrap(), q);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("explode:1:2").is_err());
        assert!(FaultPlan::parse("panic:1").is_err());
        assert!(FaultPlan::parse("panic:x:2").is_err());
        assert!(FaultPlan::parse("panic:1:2:3:4").is_err());
    }
}
