//! Named task and optimizer factories.
//!
//! Closures cannot cross a process boundary, so fleet jobs carry the
//! *names* of their workload and optimizer and both the coordinator and
//! the `yf-fleet-worker` processes resolve them here — the registry is
//! the single source of truth that keeps an in-process sweep and a
//! multi-process fleet sweep building bit-identical cells.

use crate::task::{ModelTask, TrainTask};
use crate::workloads;
use yellowfin::{YellowFin, YellowFinConfig};
use yf_nn::Mlp;
use yf_optim::{AdaGrad, Adam, MomentumSgd, Optimizer, RmsProp, Sgd};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

/// Seeded constructor for a boxed training task.
pub type TaskBuilder = fn(u64) -> Box<dyn TrainTask>;

/// Grid-value constructor for a boxed optimizer (the grid value is the
/// learning rate, or the lr factor for YellowFin).
pub type OptBuilder = fn(f32) -> Box<dyn Optimizer>;

/// A tiny MLP on synthetic 2-feature data: cheap enough for the
/// fault-injection test matrix, with a *stateful* batcher (an RNG drawing
/// each minibatch) so checkpoint resume must replay the batch stream to
/// stay bit-exact.
pub fn toy_mlp(seed: u64) -> Box<dyn TrainTask> {
    let mut rng = Pcg32::seed_stream(seed, 0x70);
    let mlp = Mlp::new(&[2, 8, 2], &mut rng);
    let mut data_rng = Pcg32::seed_stream(seed, 0x71);
    Box::new(ModelTask::new(
        mlp,
        move |_| {
            let x = Tensor::randn(&[8, 2], &mut data_rng);
            let y = (0..8)
                .map(|r| usize::from(x.at(&[r, 0]) + x.at(&[r, 1]) > 0.0))
                .collect();
            (x, y)
        },
        |m: &Mlp| {
            let mut rng = Pcg32::seed(999);
            let x = Tensor::randn(&[64, 2], &mut rng);
            let y: Vec<usize> = (0..64)
                .map(|r| usize::from(x.at(&[r, 0]) + x.at(&[r, 1]) > 0.0))
                .collect();
            f64::from(m.accuracy(&x, &y))
        },
        "accuracy",
        false,
    ))
}

/// Resolves a workload name to its seeded constructor.
pub fn task_builder(name: &str) -> Option<TaskBuilder> {
    Some(match name {
        "toy-mlp" => toy_mlp,
        "cifar10" => workloads::cifar10_like,
        "cifar100" => workloads::cifar100_like,
        "resnext" => workloads::resnext_like,
        "ptb" => workloads::ptb_like,
        "ts" => workloads::ts_like,
        "tied" => workloads::tied_lstm_like,
        "wsj" => workloads::wsj_like,
        "exploding" => workloads::exploding_lstm_like,
        _ => return None,
    })
}

fn momentum(lr: f32) -> Box<dyn Optimizer> {
    Box::new(MomentumSgd::new(lr, 0.9))
}

fn nesterov(lr: f32) -> Box<dyn Optimizer> {
    Box::new(MomentumSgd::nesterov(lr, 0.9))
}

fn yellowfin(lr_factor: f32) -> Box<dyn Optimizer> {
    Box::new(YellowFin::new(YellowFinConfig {
        lr_factor: f64::from(lr_factor),
        ..YellowFinConfig::default()
    }))
}

/// Resolves an optimizer name to its grid-value constructor. Momentum
/// variants fix the paper's 0.9 momentum; the grid value is the learning
/// rate (for `"yellowfin"`, the Appendix J.4 learning-rate factor).
pub fn opt_builder(name: &str) -> Option<OptBuilder> {
    Some(match name {
        "sgd" => |lr| Box::new(Sgd::new(lr)) as Box<dyn Optimizer>,
        "momentum" => momentum,
        "nesterov" => nesterov,
        "adam" => |lr| Box::new(Adam::new(lr)) as Box<dyn Optimizer>,
        "adagrad" => |lr| Box::new(AdaGrad::new(lr)) as Box<dyn Optimizer>,
        "rmsprop" => |lr| Box::new(RmsProp::new(lr)) as Box<dyn Optimizer>,
        "yellowfin" => yellowfin,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_known_names() {
        for name in ["toy-mlp", "cifar10", "ptb", "ts"] {
            assert!(task_builder(name).is_some(), "{name}");
        }
        for name in ["sgd", "momentum", "nesterov", "adam", "yellowfin"] {
            assert!(opt_builder(name).is_some(), "{name}");
        }
        assert!(task_builder("nope").is_none());
        assert!(opt_builder("nope").is_none());
    }

    #[test]
    fn toy_mlp_fast_forward_matches_replayed_stream() {
        // The batcher is stateful: skipping steps without fast_forward
        // would desynchronize the minibatch stream.
        let mut a = toy_mlp(5);
        let mut b = toy_mlp(5);
        let p = a.init_params();
        for s in 0..4 {
            let _ = a.loss_grad_at(&p, s);
        }
        b.fast_forward(4);
        let (la, ga) = a.loss_grad_at(&p, 4);
        let (lb, gb) = b.loss_grad_at(&p, 4);
        assert_eq!(la, lb);
        assert_eq!(ga, gb);
    }

    #[test]
    fn yellowfin_builder_applies_the_lr_factor() {
        let opt = yellowfin(0.5);
        assert_eq!(opt.name(), "yellowfin");
    }
}
