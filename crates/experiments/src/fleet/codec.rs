//! Bit-exact serialization of training checkpoints and run results.
//!
//! Floats are written as raw bit patterns via [`yf_wire::hex`] (the same
//! discipline as the optimizer state checkpoints) so a result computed
//! in a worker process and merged by the coordinator is bitwise
//! identical to one computed in-process.

use crate::trainer::{RunResult, TrainCheckpoint};
use std::fmt;
use yf_wire::hex::{f32_row, f32_unrow, metric_row, metric_unrow, HexError};

// The scalar codecs, re-exported for protocol code that historically
// imported them from here.
pub use yf_wire::hex::{f32_hex, f32_unhex};

/// Error decoding a checkpoint or result payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecError(String);

impl CodecError {
    fn new(msg: impl Into<String>) -> CodecError {
        CodecError(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fleet payload: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl From<HexError> for CodecError {
    fn from(e: HexError) -> CodecError {
        CodecError(e.to_string())
    }
}

/// Line-oriented `key value` reader over a fixed header.
struct Fields<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Fields<'a> {
    fn new(text: &'a str, header: &str) -> Result<Fields<'a>, CodecError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == header => Ok(Fields { lines }),
            Some(h) => Err(CodecError::new(format!(
                "expected header {header:?}, found {h:?}"
            ))),
            None => Err(CodecError::new("empty payload")),
        }
    }

    fn field(&mut self, key: &str) -> Result<&'a str, CodecError> {
        let line = self
            .lines
            .next()
            .ok_or_else(|| CodecError::new(format!("truncated before field {key:?}")))?;
        match line.split_once(' ') {
            Some((k, v)) if k == key => Ok(v),
            _ => Err(CodecError::new(format!(
                "expected field {key:?}, found line {line:?}"
            ))),
        }
    }

    /// The remaining lines (for embedded multi-line blocks), normalized
    /// to end with a newline — matching what the encoder wrote.
    fn rest(self) -> String {
        let mut out = String::new();
        for line in self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

const CKPT_HEADER: &str = "yf-fleet-checkpoint v1";
const RESULT_HEADER: &str = "yf-fleet-result v1";

/// Serializes a [`TrainCheckpoint`] bit-exactly.
pub fn encode_checkpoint(ckpt: &TrainCheckpoint) -> String {
    let mut out = String::new();
    out.push_str(CKPT_HEADER);
    out.push('\n');
    out.push_str(&format!("step {}\n", ckpt.step));
    out.push_str(&format!("base_lr {}\n", f32_hex(ckpt.base_lr)));
    out.push_str(&format!("params {}\n", f32_row(&ckpt.params)));
    out.push_str(&format!("losses {}\n", f32_row(&ckpt.losses)));
    out.push_str(&format!("metrics {}\n", metric_row(&ckpt.metrics)));
    out.push_str("opt_state\n");
    out.push_str(&ckpt.opt_state);
    if !ckpt.opt_state.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Parses [`encode_checkpoint`] output.
///
/// # Errors
///
/// [`CodecError`] on any structural or bit-pattern mismatch.
pub fn decode_checkpoint(text: &str) -> Result<TrainCheckpoint, CodecError> {
    let mut f = Fields::new(text, CKPT_HEADER)?;
    let step = f
        .field("step")?
        .parse()
        .map_err(|_| CodecError::new("bad step"))?;
    let base_lr = f32_unhex(f.field("base_lr")?)?;
    let params = f32_unrow(f.field("params")?)?;
    let losses = f32_unrow(f.field("losses")?)?;
    let metrics = metric_unrow(f.field("metrics")?)?;
    // "opt_state" is a bare marker line; everything after it is the
    // embedded multi-line optimizer state.
    match f.lines.next() {
        Some("opt_state") => {}
        Some(line) => {
            return Err(CodecError::new(format!(
                "expected opt_state marker, found {line:?}"
            )))
        }
        None => return Err(CodecError::new("truncated before opt_state")),
    }
    let opt_state = f.rest();
    if opt_state.is_empty() {
        return Err(CodecError::new("empty opt_state block"));
    }
    Ok(TrainCheckpoint {
        step,
        base_lr,
        params,
        losses,
        metrics,
        opt_state,
    })
}

/// Serializes a [`RunResult`] bit-exactly.
pub fn encode_result(result: &RunResult) -> String {
    let mut out = String::new();
    out.push_str(RESULT_HEADER);
    out.push('\n');
    out.push_str(&format!("losses {}\n", f32_row(&result.losses)));
    out.push_str(&format!("metrics {}\n", metric_row(&result.metrics)));
    out.push_str(&format!("final_params {}\n", f32_row(&result.final_params)));
    out
}

/// Parses [`encode_result`] output.
///
/// # Errors
///
/// [`CodecError`] on any structural or bit-pattern mismatch.
pub fn decode_result(text: &str) -> Result<RunResult, CodecError> {
    let mut f = Fields::new(text, RESULT_HEADER)?;
    let losses = f32_unrow(f.field("losses")?)?;
    let metrics = metric_unrow(f.field("metrics")?)?;
    let final_params = f32_unrow(f.field("final_params")?)?;
    Ok(RunResult {
        losses,
        metrics,
        final_params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let ckpt = TrainCheckpoint {
            step: 40,
            base_lr: 0.1,
            params: vec![1.0, -2.5e-8, f32::MIN_POSITIVE, 3.0e30],
            losses: vec![0.5, 0.25],
            metrics: vec![(25, 0.875), (50, 0.9375)],
            opt_state: "kind momentum-sgd\nversion 1\nlr 3dcccccd\n".to_string(),
        };
        let text = encode_checkpoint(&ckpt);
        assert_eq!(decode_checkpoint(&text).unwrap(), ckpt);
    }

    #[test]
    fn result_round_trips_bit_exactly() {
        let r = RunResult {
            losses: vec![2.0, 1.5, 1.25],
            metrics: vec![(2, 0.5)],
            final_params: vec![0.125, -0.0625],
        };
        let text = encode_result(&r);
        let back = decode_result(&text).unwrap();
        assert_eq!(back.losses, r.losses);
        assert_eq!(back.metrics, r.metrics);
        assert_eq!(back.final_params, r.final_params);
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let ckpt = TrainCheckpoint {
            step: 1,
            base_lr: 0.1,
            params: vec![1.0],
            losses: vec![0.5],
            metrics: vec![],
            opt_state: "kind sgd\nversion 1\n".to_string(),
        };
        let text = encode_checkpoint(&ckpt);
        // Cuts in the structured field region are rejected here; cuts
        // inside the free-form opt_state tail are caught one layer down,
        // by the checksum seal (fsio::read_sealed), not the codec.
        let fields_end = text.find("opt_state").unwrap();
        for cut in [10, fields_end / 2, fields_end] {
            assert!(
                decode_checkpoint(&text[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        assert!(decode_result("yf-fleet-result v1\nlosses zz\n").is_err());
        assert!(decode_result("wrong header\n").is_err());
    }
}
