//! The fleet worker: runs grid cells dispatched over its transport
//! (stdio by default, TCP with `--transport tcp`), checkpoints them
//! durably, and reports progress back over the same transport.
//!
//! One worker process serves many cells (the coordinator keeps it warm
//! across dispatches). Per cell it:
//!
//! 1. resolves the workload/optimizer from the [`registry`] module;
//! 2. resumes from the cell's sealed checkpoint when a valid one exists
//!    (torn or stale checkpoints are discarded with a warning — the cell
//!    restarts from scratch, which is equally deterministic);
//! 3. trains with [`train_resumable`], emitting a heartbeat and a sealed
//!    checkpoint every `checkpoint_every` steps;
//! 4. writes the sealed result file, then reports `done` — the result is
//!    durable *before* the coordinator ever hears about it.
//!
//! The armed [`FaultPlan`] (from `YF_FAULT`) is threaded through the
//! step/checkpoint callbacks, so every injected failure lands at a
//! deterministic point in the training stream.

use super::codec::{decode_checkpoint, encode_checkpoint, encode_result};
use super::fault::{die_hard, FaultKind, FaultPlan};
use super::fsio::{read_sealed, write_sealed, SealedFileError};
use super::proto::{CellSpec, Request, Response};
use super::{checkpoint_path, result_path};
use crate::fleet::registry;
use crate::trainer::{train_resumable, RunConfig, TrainCheckpoint, TrainEvent};
use std::cell::RefCell;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::rc::Rc;
use yf_wire::binary::{self, RawFrame};

/// The worker's reply channel, shared between the request loop and the
/// heartbeat callback inside a running cell. Single-threaded (the worker
/// trains on its one request thread), hence `Rc<RefCell<..>>`.
type Out<W> = Rc<RefCell<W>>;

/// Entry point for the `yf-fleet-worker` binary's default stdio
/// transport: serves requests from stdin until EOF or an explicit
/// shutdown. Returns the process exit code.
pub fn worker_main() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve(stdin.lock(), stdout.lock())
}

/// Entry point for `yf-fleet-worker --transport tcp --connect <addr>`:
/// dials the coordinator and serves the same request loop over the
/// socket. Returns the process exit code.
pub fn worker_tcp(addr: &str) -> i32 {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("yf-fleet-worker: connecting to {addr}: {e}");
            return 1;
        }
    };
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(e) => {
            eprintln!("yf-fleet-worker: cloning socket: {e}");
            return 1;
        }
    };
    serve(reader, stream)
}

/// The transport-agnostic request loop: one [`Request`] line in, `step`
/// heartbeats and one terminal `done`/`error` line out.
///
/// The fleet link is JSON-only; reading through the mixed-dialect
/// [`binary::read_frame`] means a stray binary frame (a serve client
/// dialled at the fleet port) is rejected as a typed protocol error
/// instead of being misread as UTF-8 garbage.
fn serve<R: BufRead, W: Write>(mut reader: R, writer: W) -> i32 {
    let fault = match FaultPlan::from_env() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("yf-fleet-worker: {e}");
            return 2;
        }
    };
    let out: Out<W> = Rc::new(RefCell::new(writer));
    loop {
        let line = match binary::read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(RawFrame::Line(l))) => l,
            Ok(Some(RawFrame::Binary(_))) => {
                eprintln!(
                    "yf-fleet-worker: binary wire frame on the fleet link \
                     (the fleet protocol is JSON-only; is a serve client \
                     dialling the fleet port?)"
                );
                return 1;
            }
            Err(e) => {
                eprintln!("yf-fleet-worker: transport: {e}");
                return 1;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::from_line(&line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("yf-fleet-worker: bad request: {e}");
                return 1;
            }
        };
        match request {
            Request::Shutdown => return 0,
            Request::Run(spec) => {
                let response = match run_cell(&spec, fault, &out) {
                    Ok(()) => Response::Done { cell: spec.cell },
                    Err(message) => Response::Error {
                        cell: spec.cell,
                        message,
                    },
                };
                if emit(&out, &response).is_err() {
                    // Coordinator is gone; nothing left to serve.
                    return 1;
                }
            }
        }
    }
    0
}

fn emit<W: Write>(out: &Out<W>, response: &Response) -> std::io::Result<()> {
    let mut w = out.borrow_mut();
    writeln!(w, "{}", response.to_line())?;
    w.flush()
}

/// Loads the cell's checkpoint if a valid sealed one exists. Torn or
/// undecodable files are discarded (the fault recovery path), never
/// trusted.
fn load_checkpoint(path: &Path, cell: usize) -> Option<TrainCheckpoint> {
    let text = match read_sealed(path) {
        Ok(t) => t,
        Err(SealedFileError::Missing(_)) => return None,
        Err(e) => {
            eprintln!("yf-fleet-worker: cell {cell}: discarding checkpoint: {e}");
            return None;
        }
    };
    match decode_checkpoint(&text) {
        Ok(ckpt) => Some(ckpt),
        Err(e) => {
            eprintln!("yf-fleet-worker: cell {cell}: discarding checkpoint: {e}");
            None
        }
    }
}

/// Runs one cell to a durable result file. `Err` carries a message the
/// coordinator records in the journal before retrying.
fn run_cell<W: Write>(
    spec: &CellSpec,
    fault: Option<FaultPlan>,
    out: &Out<W>,
) -> Result<(), String> {
    let build_task = registry::task_builder(&spec.task)
        .ok_or_else(|| format!("unknown task {:?}", spec.task))?;
    let build_opt = registry::opt_builder(&spec.opt)
        .ok_or_else(|| format!("unknown optimizer {:?}", spec.opt))?;
    let dir = Path::new(&spec.dir);
    let ckpt_path = checkpoint_path(dir, spec.cell);
    let resume = load_checkpoint(&ckpt_path, spec.cell);
    let result = match execute(spec, build_task, build_opt, fault, resume, out) {
        Ok(r) => r,
        Err(e) => {
            // A checkpoint the trainer rejected (e.g. from an older spec)
            // is discarded and the cell restarts from scratch; a fresh
            // run cannot fail to resume.
            eprintln!(
                "yf-fleet-worker: cell {}: checkpoint rejected ({e}); restarting cell",
                spec.cell
            );
            execute(spec, build_task, build_opt, fault, None, out).map_err(|e| e.to_string())?
        }
    };
    let encoded = encode_result(&result);
    write_sealed(&result_path(dir, spec.cell), &encoded)
        .map_err(|e| format!("writing result: {e}"))?;
    // The checkpoint has served its purpose; leaving it is harmless (a
    // done cell is never re-dispatched) but cleaning up keeps dirs tidy.
    let _ = std::fs::remove_file(&ckpt_path);
    Ok(())
}

fn execute<W: Write>(
    spec: &CellSpec,
    build_task: registry::TaskBuilder,
    build_opt: registry::OptBuilder,
    fault: Option<FaultPlan>,
    resume: Option<TrainCheckpoint>,
    out: &Out<W>,
) -> Result<crate::trainer::RunResult, crate::trainer::ResumeError> {
    let mut task = build_task(spec.seed);
    let mut opt = build_opt(spec.value);
    let cfg = RunConfig::plain(spec.iters).with_eval(spec.eval_every);
    let dir = Path::new(&spec.dir).to_path_buf();
    let ckpt_path = checkpoint_path(&dir, spec.cell);
    let heartbeat = spec.checkpoint_every.max(1) as u64;
    let (cell, attempt) = (spec.cell, spec.attempt);
    let out = Rc::clone(out);
    train_resumable(
        task.as_mut(),
        opt.as_mut(),
        &cfg,
        resume,
        spec.checkpoint_every,
        move |event| match event {
            TrainEvent::Step(step) => {
                if let Some(f) = fault {
                    if f.fires(FaultKind::Panic, cell, step, attempt) {
                        panic!("injected fault: panic at cell {cell} step {step}");
                    }
                    if f.fires(FaultKind::Hang, cell, step, attempt) {
                        loop {
                            std::thread::sleep(std::time::Duration::from_millis(250));
                        }
                    }
                    if f.fires(FaultKind::Kill, cell, step, attempt) {
                        die_hard();
                    }
                }
                if (step + 1) % heartbeat == 0 {
                    let _ = emit(&out, &Response::Step { cell, step });
                }
            }
            TrainEvent::Checkpoint(ckpt) => {
                let encoded = encode_checkpoint(ckpt);
                if let Some(f) = fault {
                    if f.fires(FaultKind::Torn, cell, ckpt.step, attempt) {
                        // Simulate a crash mid-write with no atomic
                        // rename: a truncated, unsealed file lands at
                        // the real path, then the process dies cold.
                        let _ = std::fs::write(&ckpt_path, &encoded[..encoded.len() / 2]);
                        die_hard();
                    }
                }
                if let Err(e) = write_sealed(&ckpt_path, &encoded) {
                    // A failed checkpoint write only costs resume
                    // granularity, never correctness.
                    eprintln!("yf-fleet-worker: cell {cell}: checkpoint write failed: {e}");
                }
            }
        },
    )
}
