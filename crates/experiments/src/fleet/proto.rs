//! The coordinator ↔ worker wire protocol: line-delimited JSON on the
//! worker's stdin/stdout.
//!
//! The coordinator sends one [`Request`] line at a time; an idle worker
//! answers `run` with `step` heartbeats while training and exactly one
//! terminal `done`/`error` line. Floats travel as hex bit patterns
//! inside JSON strings so nothing is lost to decimal formatting.

use super::codec::{f32_hex, f32_unhex};
use super::json::{self, Json, JsonError};

/// A grid cell dispatch: everything a worker needs to run one
/// `(value, seed)` training cell and persist its artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Cell index in canonical grid order.
    pub cell: usize,
    /// Registry name of the workload.
    pub task: String,
    /// Registry name of the optimizer.
    pub opt: String,
    /// Grid value (learning rate / lr factor).
    pub value: f32,
    /// Training seed.
    pub seed: u64,
    /// Training iterations.
    pub iters: usize,
    /// Validate every this many iterations (0 disables).
    pub eval_every: usize,
    /// Checkpoint every this many steps (0 disables).
    pub checkpoint_every: usize,
    /// 0-based dispatch attempt (faults key on it).
    pub attempt: u32,
    /// Directory holding the journal, checkpoints, and results.
    pub dir: String,
}

/// Coordinator → worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one cell.
    Run(CellSpec),
    /// Exit cleanly.
    Shutdown,
}

/// Worker → coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Progress heartbeat: the worker finished `step` of `cell`.
    Step {
        /// Cell being trained.
        cell: usize,
        /// 0-based step just completed.
        step: u64,
    },
    /// The cell's result is durably on disk.
    Done {
        /// Completed cell.
        cell: usize,
    },
    /// The attempt failed (the worker itself survives).
    Error {
        /// Failed cell.
        cell: usize,
        /// Why.
        message: String,
    },
}

impl Request {
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Run(spec) => Json::obj(vec![
                ("type", Json::str("run")),
                ("cell", Json::u64(spec.cell as u64)),
                ("task", Json::str(spec.task.clone())),
                ("opt", Json::str(spec.opt.clone())),
                ("value", Json::str(f32_hex(spec.value))),
                ("seed", Json::u64(spec.seed)),
                ("iters", Json::u64(spec.iters as u64)),
                ("eval_every", Json::u64(spec.eval_every as u64)),
                ("checkpoint_every", Json::u64(spec.checkpoint_every as u64)),
                ("attempt", Json::u64(u64::from(spec.attempt))),
                ("dir", Json::str(spec.dir.clone())),
            ])
            .to_string(),
            Request::Shutdown => Json::obj(vec![("type", Json::str("shutdown"))]).to_string(),
        }
    }

    /// Parses one JSON line.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON or missing fields.
    pub fn from_line(line: &str) -> Result<Request, JsonError> {
        let v = json::parse(line)?;
        match v.str_field("type")? {
            "run" => Ok(Request::Run(CellSpec {
                cell: v.u64_field("cell")? as usize,
                task: v.str_field("task")?.to_string(),
                opt: v.str_field("opt")?.to_string(),
                value: f32_unhex(v.str_field("value")?).map_err(|e| JsonError {
                    at: 0,
                    message: e.to_string(),
                })?,
                seed: v.u64_field("seed")?,
                iters: v.u64_field("iters")? as usize,
                eval_every: v.u64_field("eval_every")? as usize,
                checkpoint_every: v.u64_field("checkpoint_every")? as usize,
                attempt: v.u64_field("attempt")? as u32,
                dir: v.str_field("dir")?.to_string(),
            })),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JsonError {
                at: 0,
                message: format!("unknown request type {other:?}"),
            }),
        }
    }
}

impl Response {
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Step { cell, step } => Json::obj(vec![
                ("type", Json::str("step")),
                ("cell", Json::u64(*cell as u64)),
                ("step", Json::u64(*step)),
            ])
            .to_string(),
            Response::Done { cell } => Json::obj(vec![
                ("type", Json::str("done")),
                ("cell", Json::u64(*cell as u64)),
            ])
            .to_string(),
            Response::Error { cell, message } => Json::obj(vec![
                ("type", Json::str("error")),
                ("cell", Json::u64(*cell as u64)),
                ("message", Json::str(message.clone())),
            ])
            .to_string(),
        }
    }

    /// Parses one JSON line.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON or missing fields.
    pub fn from_line(line: &str) -> Result<Response, JsonError> {
        let v = json::parse(line)?;
        let cell = v.u64_field("cell")? as usize;
        match v.str_field("type")? {
            "step" => Ok(Response::Step {
                cell,
                step: v.u64_field("step")?,
            }),
            "done" => Ok(Response::Done { cell }),
            "error" => Ok(Response::Error {
                cell,
                message: v.str_field("message")?.to_string(),
            }),
            other => Err(JsonError {
                at: 0,
                message: format!("unknown response type {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let spec = CellSpec {
            cell: 5,
            task: "toy-mlp".to_string(),
            opt: "momentum".to_string(),
            value: 0.1,
            seed: 42,
            iters: 100,
            eval_every: 25,
            checkpoint_every: 10,
            attempt: 1,
            dir: "/tmp/fleet run".to_string(),
        };
        let req = Request::Run(spec);
        assert_eq!(Request::from_line(&req.to_line()).unwrap(), req);
        assert_eq!(
            Request::from_line(&Request::Shutdown.to_line()).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Step { cell: 1, step: 99 },
            Response::Done { cell: 2 },
            Response::Error {
                cell: 3,
                message: "bad \"task\"\nname".to_string(),
            },
        ] {
            assert_eq!(Response::from_line(&resp.to_line()).unwrap(), resp);
        }
    }
}
