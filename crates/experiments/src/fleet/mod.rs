//! Fault-tolerant fleet grid search.
//!
//! The Appendix I grid-search protocol — one training run per
//! `(value, seed)` cell, multi-seed averaging, pick the best smoothed
//! curve — reframed as a durable multi-process job queue:
//!
//! - [`journal`]: every cell is a job in an append-only fsynced JSONL
//!   journal (`pending → leased → done/failed`); replay resumes a sweep
//!   after any crash without re-running finished cells;
//! - [`worker`] + the `yf-fleet-worker` binary: N worker processes take
//!   cells over line-delimited JSON on stdio ([`proto`]), checkpoint
//!   every K steps, and persist sealed results;
//! - [`coordinator`]: leases with heartbeat-extended deadlines, SIGKILL
//!   for stragglers, capped retries with exponential backoff, and a
//!   first-durable-result-wins merge through the same
//!   [`crate::grid::score_results`] scorer the in-process sweep uses —
//!   so the final [`crate::grid::GridOutcome`] is bitwise identical to
//!   an uninterrupted [`crate::grid::grid_search`];
//! - [`fsio`]: atomic (tmp + fsync + rename) writes and checksum-sealed
//!   loads that reject torn files with typed errors;
//! - [`fault`]: a deterministic fault-injection layer (`YF_FAULT`) that
//!   can panic, hang, SIGKILL, or tear a checkpoint write at an exact
//!   `(cell, step, attempt)` — the substrate of the recovery test
//!   matrix.

pub mod codec;
pub mod coordinator;
pub mod fault;
pub mod journal;
pub mod proto;
pub mod registry;
pub mod worker;

// The wire dialect (line JSON, hex-bit floats, sealed atomic files) is
// shared with `yf-serve`; it lives in `yf-wire` so fleet and serve
// cannot drift. Re-exported under the original fleet paths.
pub use yf_wire::{fsio, json};

pub use coordinator::{
    run_fleet, FleetConfig, FleetError, FleetReport, FleetSpec, WorkerTransport,
};
pub use fault::{FaultKind, FaultPlan};

use std::path::{Path, PathBuf};

/// The sealed checkpoint file for a cell.
pub fn checkpoint_path(dir: &Path, cell: usize) -> PathBuf {
    dir.join(format!("ckpt-{cell}.txt"))
}

/// The sealed result file for a cell.
pub fn result_path(dir: &Path, cell: usize) -> PathBuf {
    dir.join(format!("result-{cell}.txt"))
}
