//! The durable job journal: an append-only JSONL event log that makes a
//! grid sweep's progress survive coordinator and worker crashes.
//!
//! Every state transition of every `(value, seed)` cell is one fsynced
//! line — `job` (enqueued), `lease` (dispatched to a worker), `done`
//! (result durably on disk), `fail` (attempt ended without a result).
//! Replaying the log reconstructs exactly which cells are finished and
//! how many attempts each open cell has consumed, so a restarted
//! coordinator resumes the sweep without re-running completed cells. A
//! torn final line (the classic crash-mid-append) is tolerated: replay
//! ignores it and the next append supersedes it.

use super::fsio::append_line_durable;
use super::json::{self, Json};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One journal event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A cell was enqueued with its grid coordinates.
    Job {
        /// Cell index in canonical grid order.
        cell: usize,
        /// Grid value, as `f32` bits.
        value_bits: u32,
        /// Training seed.
        seed: u64,
    },
    /// A cell was dispatched to a worker.
    Lease {
        /// Cell index.
        cell: usize,
        /// Worker slot it went to.
        worker: usize,
        /// 0-based dispatch attempt.
        attempt: u32,
    },
    /// A cell's result is durably on disk.
    Done {
        /// Cell index.
        cell: usize,
    },
    /// A dispatch attempt failed.
    Fail {
        /// Cell index.
        cell: usize,
        /// The attempt that failed.
        attempt: u32,
        /// Why.
        error: String,
    },
}

impl Event {
    fn to_json(&self) -> Json {
        match self {
            Event::Job {
                cell,
                value_bits,
                seed,
            } => Json::obj(vec![
                ("e", Json::str("job")),
                ("cell", Json::u64(*cell as u64)),
                ("value", Json::str(format!("{value_bits:08x}"))),
                ("seed", Json::u64(*seed)),
            ]),
            Event::Lease {
                cell,
                worker,
                attempt,
            } => Json::obj(vec![
                ("e", Json::str("lease")),
                ("cell", Json::u64(*cell as u64)),
                ("worker", Json::u64(*worker as u64)),
                ("attempt", Json::u64(u64::from(*attempt))),
            ]),
            Event::Done { cell } => Json::obj(vec![
                ("e", Json::str("done")),
                ("cell", Json::u64(*cell as u64)),
            ]),
            Event::Fail {
                cell,
                attempt,
                error,
            } => Json::obj(vec![
                ("e", Json::str("fail")),
                ("cell", Json::u64(*cell as u64)),
                ("attempt", Json::u64(u64::from(*attempt))),
                ("error", Json::str(error.clone())),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Event, JournalError> {
        let bad = |msg: String| JournalError::Malformed(msg);
        let kind = v
            .str_field("e")
            .map_err(|e| bad(e.to_string()))?
            .to_string();
        let cell = v.u64_field("cell").map_err(|e| bad(e.to_string()))? as usize;
        match kind.as_str() {
            "job" => {
                let hex = v.str_field("value").map_err(|e| bad(e.to_string()))?;
                let value_bits = u32::from_str_radix(hex, 16)
                    .map_err(|_| bad(format!("bad value bits {hex:?}")))?;
                let seed = v.u64_field("seed").map_err(|e| bad(e.to_string()))?;
                Ok(Event::Job {
                    cell,
                    value_bits,
                    seed,
                })
            }
            "lease" => Ok(Event::Lease {
                cell,
                worker: v.u64_field("worker").map_err(|e| bad(e.to_string()))? as usize,
                attempt: v.u64_field("attempt").map_err(|e| bad(e.to_string()))? as u32,
            }),
            "done" => Ok(Event::Done { cell }),
            "fail" => Ok(Event::Fail {
                cell,
                attempt: v.u64_field("attempt").map_err(|e| bad(e.to_string()))? as u32,
                error: v
                    .str_field("error")
                    .map_err(|e| bad(e.to_string()))?
                    .to_string(),
            }),
            other => Err(bad(format!("unknown event kind {other:?}"))),
        }
    }
}

/// Journal I/O or format error.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// An interior line (not the torn tail) failed to parse.
    Malformed(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o: {e}"),
            JournalError::Malformed(m) => write!(f, "journal corrupt: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Replayed per-cell state.
#[derive(Debug, Clone, PartialEq)]
pub struct CellState {
    /// Grid value bits from the `job` event.
    pub value_bits: u32,
    /// Seed from the `job` event.
    pub seed: u64,
    /// Dispatch attempts consumed so far (`lease` events seen).
    pub attempts: u32,
    /// Whether a `done` event was recorded.
    pub done: bool,
    /// Last failure message, if any attempt failed.
    pub last_error: Option<String>,
}

/// The whole sweep's replayed state.
#[derive(Debug, Default)]
pub struct Replay {
    /// Per-cell states, indexed by cell (dense; `job` events define it).
    pub cells: Vec<CellState>,
    /// Whether a torn trailing line was dropped during replay.
    pub dropped_torn_tail: bool,
}

/// The append-only journal file.
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// Opens (or names) the journal at `dir/journal.jsonl`.
    pub fn open(dir: &Path) -> Journal {
        Journal {
            path: dir.join("journal.jsonl"),
        }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably appends one event (single fsynced line).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn append(&self, event: &Event) -> Result<(), JournalError> {
        append_line_durable(&self.path, &event.to_json().to_string())?;
        Ok(())
    }

    /// Replays the journal into per-cell state. A missing file replays to
    /// an empty sweep; a torn *final* line is dropped (crash mid-append);
    /// a malformed interior line is corruption and errors.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on read failure, [`JournalError::Malformed`]
    /// on interior corruption or events referencing unknown cells.
    pub fn replay(&self) -> Result<Replay, JournalError> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(JournalError::Io(e)),
        };
        let lines: Vec<&str> = text.lines().collect();
        let mut replay = Replay::default();
        for (i, line) in lines.iter().enumerate() {
            let last = i + 1 == lines.len();
            let parsed = json::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|v| Event::from_json(&v).map_err(|e| e.to_string()));
            let event = match parsed {
                Ok(ev) => ev,
                Err(_) if last && !text.ends_with('\n') => {
                    // Torn tail: the process died mid-append. The event
                    // never became durable; drop it.
                    replay.dropped_torn_tail = true;
                    break;
                }
                Err(e) => return Err(JournalError::Malformed(format!("line {}: {e}", i + 1))),
            };
            replay.apply(event, i + 1)?;
        }
        Ok(replay)
    }
}

impl Replay {
    fn apply(&mut self, event: Event, line_no: usize) -> Result<(), JournalError> {
        let known = |cells: &mut Vec<CellState>, cell: usize| -> Result<(), JournalError> {
            if cell >= cells.len() {
                return Err(JournalError::Malformed(format!(
                    "line {line_no}: event for unknown cell {cell}"
                )));
            }
            Ok(())
        };
        match event {
            Event::Job {
                cell,
                value_bits,
                seed,
            } => {
                if cell != self.cells.len() {
                    return Err(JournalError::Malformed(format!(
                        "line {line_no}: job event for cell {cell}, expected {}",
                        self.cells.len()
                    )));
                }
                self.cells.push(CellState {
                    value_bits,
                    seed,
                    attempts: 0,
                    done: false,
                    last_error: None,
                });
            }
            Event::Lease { cell, .. } => {
                known(&mut self.cells, cell)?;
                self.cells[cell].attempts += 1;
            }
            Event::Done { cell } => {
                known(&mut self.cells, cell)?;
                self.cells[cell].done = true;
            }
            Event::Fail { cell, error, .. } => {
                known(&mut self.cells, cell)?;
                self.cells[cell].last_error = Some(error);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("yf-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn replay_reconstructs_cell_states() {
        let dir = tmpdir("replay");
        let j = Journal::open(&dir);
        j.append(&Event::Job {
            cell: 0,
            value_bits: 0x3dcc_cccd,
            seed: 7,
        })
        .unwrap();
        j.append(&Event::Job {
            cell: 1,
            value_bits: 0x3e4c_cccd,
            seed: 7,
        })
        .unwrap();
        j.append(&Event::Lease {
            cell: 0,
            worker: 0,
            attempt: 0,
        })
        .unwrap();
        j.append(&Event::Fail {
            cell: 0,
            attempt: 0,
            error: "worker died".to_string(),
        })
        .unwrap();
        j.append(&Event::Lease {
            cell: 0,
            worker: 1,
            attempt: 1,
        })
        .unwrap();
        j.append(&Event::Done { cell: 0 }).unwrap();
        let r = j.replay().unwrap();
        assert_eq!(r.cells.len(), 2);
        assert!(r.cells[0].done);
        assert_eq!(r.cells[0].attempts, 2);
        assert_eq!(r.cells[0].last_error.as_deref(), Some("worker died"));
        assert!(!r.cells[1].done);
        assert_eq!(r.cells[1].attempts, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_interior_corruption_is_fatal() {
        let dir = tmpdir("torn");
        let j = Journal::open(&dir);
        j.append(&Event::Job {
            cell: 0,
            value_bits: 1,
            seed: 1,
        })
        .unwrap();
        // Simulate a crash mid-append: a partial line with no newline.
        use std::io::Write;
        let mut f = fs::OpenOptions::new().append(true).open(j.path()).unwrap();
        f.write_all(b"{\"e\":\"done\",\"cel").unwrap();
        drop(f);
        let r = j.replay().unwrap();
        assert!(r.dropped_torn_tail);
        assert_eq!(r.cells.len(), 1);
        assert!(!r.cells[0].done, "torn done event must not count");

        // Interior corruption (a complete but malformed line) is fatal.
        fs::write(
            j.path(),
            "{\"e\":\"job\",\"cell\":0,\"value\":\"01\",\"seed\":1}\nnot json\n{\"e\":\"done\",\"cell\":0}\n",
        )
        .unwrap();
        assert!(matches!(j.replay(), Err(JournalError::Malformed(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_replays_empty() {
        let dir = tmpdir("empty");
        let r = Journal::open(&dir).replay().unwrap();
        assert!(r.cells.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
