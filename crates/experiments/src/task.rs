//! The type-erased training-task interface.

use yf_nn::{flat_params, load_flat, loss_and_grad, SupervisedModel};

/// A workload the harness can train: parameters live in a flat vector so
/// any [`yf_optim::Optimizer`] (and the async simulator) can drive it.
pub trait TrainTask {
    /// Number of scalar parameters.
    fn dim(&self) -> usize;

    /// The initial parameter vector.
    fn init_params(&self) -> Vec<f32>;

    /// Minibatch loss and gradient at `params`. `step` selects the
    /// minibatch deterministically.
    fn loss_grad_at(&mut self, params: &[f32], step: u64) -> (f32, Vec<f32>);

    /// Advances internal batch-selection state to the point just before
    /// `step`, as if [`TrainTask::loss_grad_at`] had been called once for
    /// each of steps `0..step` — without paying for any forward or
    /// backward passes. Checkpoint resume calls this so a task whose
    /// batcher carries mutable state (an RNG drawing each minibatch)
    /// reproduces the uninterrupted batch sequence bit-exactly.
    ///
    /// The default is a no-op, correct for tasks that derive the batch
    /// purely from `step`.
    fn fast_forward(&mut self, step: u64) {
        let _ = step;
    }

    /// Validation metric at `params` (see [`Self::metric_name`]).
    fn validate(&mut self, params: &[f32]) -> f64;

    /// Human-readable metric name (e.g. `"perplexity"`).
    fn metric_name(&self) -> &'static str;

    /// Whether lower metric values are better.
    fn lower_is_better(&self) -> bool;
}

/// Adapter: a [`SupervisedModel`] + batch generator + validator as a
/// [`TrainTask`].
pub struct ModelTask<M: SupervisedModel> {
    model: M,
    init: Vec<f32>,
    batcher: Box<dyn FnMut(u64) -> M::Batch + Send>,
    validator: Box<dyn FnMut(&M) -> f64 + Send>,
    metric: &'static str,
    lower_better: bool,
}

impl<M: SupervisedModel> ModelTask<M> {
    /// Wraps a model. `batcher` maps the step counter to a minibatch;
    /// `validator` computes the validation metric for the current model.
    pub fn new(
        model: M,
        batcher: impl FnMut(u64) -> M::Batch + Send + 'static,
        validator: impl FnMut(&M) -> f64 + Send + 'static,
        metric: &'static str,
        lower_better: bool,
    ) -> Self {
        let init = flat_params(&model);
        ModelTask {
            model,
            init,
            batcher: Box::new(batcher),
            validator: Box::new(validator),
            metric,
            lower_better,
        }
    }

    /// Read-only access to the wrapped model (reflecting the parameters
    /// most recently passed to [`TrainTask::loss_grad_at`] or
    /// [`TrainTask::validate`]).
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: SupervisedModel> TrainTask for ModelTask<M> {
    fn dim(&self) -> usize {
        self.init.len()
    }

    fn init_params(&self) -> Vec<f32> {
        self.init.clone()
    }

    fn loss_grad_at(&mut self, params: &[f32], step: u64) -> (f32, Vec<f32>) {
        load_flat(&mut self.model, params);
        let batch = (self.batcher)(step);
        loss_and_grad(&self.model, &batch)
    }

    fn fast_forward(&mut self, step: u64) {
        // Replaying batch generation (and discarding the batches) advances
        // the batcher's internal RNG exactly as the skipped steps would
        // have; the model itself is stateless between steps (parameters
        // are re-loaded from the flat vector every call).
        for s in 0..step {
            let _ = (self.batcher)(s);
        }
    }

    fn validate(&mut self, params: &[f32]) -> f64 {
        load_flat(&mut self.model, params);
        (self.validator)(&self.model)
    }

    fn metric_name(&self) -> &'static str {
        self.metric
    }

    fn lower_is_better(&self) -> bool {
        self.lower_better
    }
}

/// Adapter exposing a [`TrainTask`] as a gradient source for the
/// asynchronous simulator.
pub struct TaskSource<'a> {
    task: &'a mut dyn TrainTask,
}

impl<'a> TaskSource<'a> {
    /// Borrows a task as a gradient source.
    pub fn new(task: &'a mut dyn TrainTask) -> Self {
        TaskSource { task }
    }
}

impl yf_async::GradSource for TaskSource<'_> {
    fn grad(&mut self, params: &[f32], step: u64) -> (f32, Vec<f32>) {
        self.task.loss_grad_at(params, step)
    }

    fn dim(&self) -> usize {
        self.task.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yf_nn::Mlp;
    use yf_tensor::rng::Pcg32;
    use yf_tensor::Tensor;

    fn mlp_task() -> ModelTask<Mlp> {
        let mut rng = Pcg32::seed(1);
        let mlp = Mlp::new(&[3, 8, 2], &mut rng);
        let mut data_rng = Pcg32::seed(2);
        ModelTask::new(
            mlp,
            move |_| {
                let x = Tensor::randn(&[4, 3], &mut data_rng);
                let y = (0..4).map(|r| usize::from(x.at(&[r, 0]) > 0.0)).collect();
                (x, y)
            },
            |m| {
                let mut rng = Pcg32::seed(3);
                let x = Tensor::randn(&[32, 3], &mut rng);
                let y: Vec<usize> = (0..32).map(|r| usize::from(x.at(&[r, 0]) > 0.0)).collect();
                f64::from(m.accuracy(&x, &y))
            },
            "accuracy",
            false,
        )
    }

    #[test]
    fn task_round_trips_params() {
        let task = mlp_task();
        assert_eq!(task.init_params().len(), task.dim());
    }

    #[test]
    fn loss_grad_at_is_deterministic_per_step() {
        let mut task = mlp_task();
        let p = task.init_params();
        let (l1, g1) = task.loss_grad_at(&p, 0);
        // Re-wrapping with the same seeds reproduces step 0 exactly.
        let mut task2 = mlp_task();
        let (l2, g2) = task2.loss_grad_at(&p, 0);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn validation_improves_with_training() {
        let mut task = mlp_task();
        let mut params = task.init_params();
        let before = task.validate(&params);
        for step in 0..300 {
            let (_, g) = task.loss_grad_at(&params, step);
            for (p, gi) in params.iter_mut().zip(&g) {
                *p -= 0.3 * gi;
            }
        }
        let after = task.validate(&params);
        assert!(after > before, "accuracy {before} -> {after}");
        assert!(after > 0.9, "final accuracy {after}");
    }
}
