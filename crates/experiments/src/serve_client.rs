//! Training against a remote tuner: the `yf-serve` client library.
//!
//! [`RemoteTuner`] splits the optimizer across the network the way the
//! serve protocol intends: the *measure* phase (gradient statistics,
//! YellowFin's combine, the authority clamp, the quality filter) runs
//! inside the server's session, while the *apply* phase stays local — a
//! plain Polyak [`MomentumSgd`] whose `step_shard` applies whatever
//! [`Hyper`] came back on the wire. Since YellowFin's own apply phase is
//! the identical `momentum_step` kernel, a trainer driving a
//! [`RemoteTuner`] takes parameter steps bitwise identical to one
//! running the tuner in process — the tuner merely lives elsewhere.
//!
//! Rejected measurements (the server's quality filter) come back as a
//! zero-learning-rate [`Hyper`] until the first accepted frame, or the
//! last served values afterwards — the trainer skips or repeats the
//! tuned update rather than applying a poisoned one.

use std::net::ToSocketAddrs;
use yf_optim::{Hyper, MomentumSgd, Optimizer, ParamShard};
use yf_serve::{Client, ClientError, MeasureReply, OpenSpec};

/// An [`Optimizer`] whose measure phase runs in a `yf-serve` session.
pub struct RemoteTuner {
    client: Client,
    session: String,
    step: u64,
    loss: f32,
    /// Local apply engine: holds the velocity state and applies the
    /// served [`Hyper`] with the same fused kernel YellowFin uses.
    apply: MomentumSgd,
    last: Hyper,
}

impl RemoteTuner {
    /// Connects and opens (or resumes) the session described by `spec`.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's rejection reason.
    pub fn connect(addr: impl ToSocketAddrs, spec: OpenSpec) -> Result<RemoteTuner, ClientError> {
        let mut client = Client::connect(addr)?;
        let session = spec.session.clone();
        let step = client.open(spec)?;
        Ok(RemoteTuner {
            client,
            session,
            step,
            loss: 0.0,
            apply: MomentumSgd::new(0.0, 0.0),
            last: Hyper {
                lr: 0.0,
                momentum: 0.0,
                grad_scale: 1.0,
            },
        })
    }

    /// The next measurement index the server expects — 0 for a fresh
    /// session, the replay point after a resume.
    pub fn next_step(&self) -> u64 {
        self.step
    }

    /// Feeds the current training loss into the next measurement (the
    /// server's quality filter screens it; the tuner itself is
    /// loss-free). Defaults to 0.0 when never called.
    pub fn set_loss(&mut self, loss: f32) {
        self.loss = loss;
    }

    /// Detaches the session server-side (it stays resumable) and returns
    /// the underlying client for further protocol use.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's rejection reason.
    pub fn detach(mut self) -> Result<Client, ClientError> {
        self.client.close_session(&self.session)?;
        Ok(self.client)
    }
}

impl Optimizer for RemoteTuner {
    /// Streams the gradient to the server and returns the served
    /// (authority-clamped) hyperparameters.
    ///
    /// # Panics
    ///
    /// The [`Optimizer`] contract has no error channel, so transport or
    /// protocol failures mid-training panic with the server's reason.
    /// Callers that need graceful degradation should drive the
    /// [`Client`] directly.
    fn observe(&mut self, _params: &[f32], grads: &[f32]) -> Hyper {
        let reply = self
            .client
            .measure(&self.session, self.step, self.loss, grads)
            .unwrap_or_else(|e| panic!("remote tuner ({}): {e}", self.session));
        self.step += 1;
        if let MeasureReply::Tuned { hyper, .. } = reply {
            self.last = hyper;
        }
        self.last
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        self.apply.step_shard(shard, params, grads, hyper);
    }

    fn learning_rate(&self) -> f32 {
        self.last.lr
    }

    fn set_learning_rate(&mut self, _lr: f32) {
        // The server's session owns the schedule; external decay must
        // not fight it (same contract as the in-process tuner).
    }

    fn is_self_tuning(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "remote-tuner"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::registry;
    use yf_serve::{Authority, FilterSpec, ServeConfig, Server};
    use yf_tensor::rng::Pcg32;

    #[test]
    fn serve_registry_names_resolve_in_the_fleet_registry() {
        // The serve crate sits below yf-experiments, so its optimizer
        // registry repeats the fleet constructors; this pins the two
        // name sets together so they cannot drift.
        for name in yf_serve::registry::OPTIMIZER_NAMES {
            assert!(
                registry::opt_builder(name).is_some(),
                "serve registry name {name:?} is unknown to the fleet registry"
            );
            assert!(
                yf_serve::registry::build_optimizer(name, 0.1).is_some(),
                "{name}"
            );
        }
    }

    #[test]
    fn remote_tuner_steps_bitwise_like_the_in_process_tuner() {
        // A trainer driving a RemoteTuner (measure on the server, apply
        // local) must walk the exact parameter trajectory of the same
        // tuner run in process.
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            snapshot_dir: None,
            ..ServeConfig::default()
        })
        .unwrap();
        let dim = 24;
        let mut spec = OpenSpec {
            session: "remote-parity".to_string(),
            optimizer: "yellowfin".to_string(),
            value: 1.0,
            dim,
            authority: Authority::default(),
            filter: FilterSpec::default(),
        };
        // Wide-open authority: the served stream is the raw tuner
        // output, so in-process YellowFin is the exact reference.
        spec.authority.max_lr_step = 1e9;
        spec.authority.max_momentum_step = 1.0;
        spec.authority.lr_max = 1e9;
        let mut remote = RemoteTuner::connect(server.local_addr(), spec).unwrap();
        let mut local = yf_serve::registry::build_optimizer("yellowfin", 1.0).unwrap();

        let mut rng = Pcg32::seed(41);
        let mut p_remote = vec![0.5f32; dim];
        let mut p_local = p_remote.clone();
        for step in 0..30 {
            let grads: Vec<f32> = (0..dim).map(|_| rng.uniform() - 0.5).collect();
            remote.step(&mut p_remote, &grads);
            local.step(&mut p_local, &grads);
            for (i, (a, b)) in p_remote.iter().zip(&p_local).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "step {step}, param {i}");
            }
        }
        assert_eq!(remote.learning_rate(), local.learning_rate());
        let _ = remote.detach().unwrap();
    }
}
