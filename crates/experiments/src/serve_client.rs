//! Training against a remote tuner: the `yf-serve` client library.
//!
//! [`RemoteTuner`] splits the optimizer across the network the way the
//! serve protocol intends: the *measure* phase (gradient statistics,
//! YellowFin's combine, the authority clamp, the quality filter) runs
//! inside the server's session, while the *apply* phase stays local — a
//! plain Polyak [`MomentumSgd`] whose `step_shard` applies whatever
//! [`Hyper`] came back on the wire. Since YellowFin's own apply phase is
//! the identical `momentum_step` kernel, a trainer driving a
//! [`RemoteTuner`] takes parameter steps bitwise identical to one
//! running the tuner in process — the tuner merely lives elsewhere.
//!
//! # Surviving the network
//!
//! The tuner assumes the network will fail and is built to keep the
//! trajectory bit-exact anyway:
//!
//! - **Shadow tuner.** Every measurement also feeds a local
//!   [`Session`] built from the same spec. Sessions are deterministic
//!   pure functions of their measurement stream, so the shadow's
//!   verdicts are bitwise identical to the server's — it is a hot
//!   spare, not an approximation.
//! - **Replay buffer + reconnect.** Measurements stay buffered until a
//!   server reply acknowledges them. On any transport failure the tuner
//!   reconnects (deadlines from [`ClientConfig`], the deterministic
//!   [`Backoff`] schedule), re-opens the session by name, and
//!   reconciles from the server's `opened{step}` replay point: already
//!   processed measurements whose replies were lost are re-sent and
//!   answered idempotently from the session's cached verdict, the rest
//!   replay in order — pipelined through the client's send-ahead
//!   window (`YF_SERVE_CLIENT_WINDOW`), so a deep buffer drains in
//!   bandwidth time rather than one round-trip per measurement. Any
//!   fault schedule that eventually reconnects therefore yields a
//!   Hyper trajectory bitwise identical to the fault-free run.
//! - **Graceful degradation.** When the server stays unreachable past
//!   [`RemoteTunerConfig::degrade_after`], the tuner serves the
//!   shadow's verdicts instead of hanging; [`RemoteTuner::degraded`]
//!   flags those steps to the trainer and
//!   [`RemoteTuner::degraded_steps`] counts them. While degraded it
//!   probes for the server at exponentially spaced step counts and
//!   resyncs (replaying the buffer) when the server returns. If the
//!   buffer would exceed [`RemoteTunerConfig::resync_limit`], the
//!   server is abandoned and the shadow serves for good.
//!
//! A session that was *resumed* mid-stream (opened at a step > 0 by a
//! fresh process) has no shadow — the local session never saw the
//! earlier measurements — so degradation is unavailable there and an
//! unreachable server panics after the budget, as the pre-hardening
//! client did.
//!
//! Rejected measurements (the server's quality filter) come back as a
//! zero-learning-rate [`Hyper`] until the first accepted frame, or the
//! last served values afterwards — the trainer skips or repeats the
//! tuned update rather than applying a poisoned one.

use std::collections::VecDeque;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};
use yf_optim::{Hyper, MomentumSgd, Optimizer, ParamShard};
use yf_serve::{
    Backoff, Client, ClientConfig, ClientError, MeasureReply, OpenSpec, Outcome, Session,
};
use yf_tensor::env;

/// Robustness policy for a [`RemoteTuner`].
/// [`RemoteTunerConfig::from_env`] layers the `YF_SERVE_CLIENT_*` knobs
/// over these defaults with the workspace's warn-and-default parsing.
#[derive(Debug, Clone, Copy)]
pub struct RemoteTunerConfig {
    /// Connect/read/write deadlines for every connection.
    pub client: ClientConfig,
    /// Reconnect schedule during an outage (deterministic, capped
    /// exponential).
    pub backoff: Backoff,
    /// How long one outage may block training before the shadow tuner
    /// takes over (`YF_SERVE_CLIENT_DEGRADE_MS`).
    pub degrade_after: Duration,
    /// Maximum buffered unacknowledged measurements; past this the
    /// server is abandoned and the shadow serves permanently
    /// (`YF_SERVE_CLIENT_RESYNC_LIMIT`).
    pub resync_limit: usize,
    /// Ceiling, in steps, between reconnect probes while degraded
    /// (`YF_SERVE_CLIENT_PROBE_CAP`).
    pub probe_cap: u64,
}

impl Default for RemoteTunerConfig {
    fn default() -> Self {
        RemoteTunerConfig {
            client: ClientConfig::default(),
            backoff: Backoff::default(),
            degrade_after: Duration::from_secs(10),
            resync_limit: 4096,
            probe_cap: 64,
        }
    }
}

impl RemoteTunerConfig {
    /// The defaults with every `YF_SERVE_CLIENT_*` override applied
    /// (hardened parsing: malformed values warn on stderr and fall
    /// back).
    pub fn from_env() -> RemoteTunerConfig {
        let mut cfg = RemoteTunerConfig {
            client: ClientConfig::from_env(),
            ..RemoteTunerConfig::default()
        };
        let ms = |raw: &str| raw.trim().parse::<u64>().ok().filter(|&n| n > 0);
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_BACKOFF_MS", ms) {
            cfg.backoff.base = Duration::from_millis(n);
        }
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_BACKOFF_CAP_MS", ms) {
            cfg.backoff.cap = Duration::from_millis(n);
        }
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_DEGRADE_MS", ms) {
            cfg.degrade_after = Duration::from_millis(n);
        }
        if let Some(n) = env::positive_usize("YF_SERVE_CLIENT_RESYNC_LIMIT") {
            cfg.resync_limit = n;
        }
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_PROBE_CAP", ms) {
            cfg.probe_cap = n;
        }
        cfg
    }
}

/// One not-yet-acknowledged measurement, kept for reconnect replay.
struct Measurement {
    step: u64,
    loss: f32,
    grads: Vec<f32>,
}

/// The connection state machine.
enum Link {
    /// Connected; the session is attached and in lockstep.
    Live(Client),
    /// Outage past the degradation budget: the shadow serves while the
    /// tuner probes for the server at `probe_at`, widening `probe_gap`
    /// exponentially (capped) after each failed probe.
    Down { probe_at: u64, probe_gap: u64 },
    /// The server was abandoned (replay buffer overflow or an
    /// unrecoverable divergence); the shadow serves permanently.
    Abandoned,
}

/// Why one reconnect-and-resync attempt failed.
enum ResyncError {
    /// Worth retrying (connect refused, timeout, server error).
    Transient,
    /// The server can never again serve this trajectory (it is ahead of
    /// or behind anything we can replay); abandon it.
    Fatal(String),
}

/// An [`Optimizer`] whose measure phase runs in a `yf-serve` session,
/// hardened against network failure. See the module docs for the full
/// robustness contract.
pub struct RemoteTuner {
    addrs: Vec<SocketAddr>,
    spec: OpenSpec,
    cfg: RemoteTunerConfig,
    link: Link,
    /// The local hot spare: a deterministic twin of the server-side
    /// session. `None` when the session was resumed mid-stream (the
    /// local twin never saw the history) or after a divergence warning.
    shadow: Option<Session>,
    /// Measurements sent (or owed) to the server but not yet
    /// acknowledged by a reply. Length 1 in the live steady state; grows
    /// while degraded; drained by a resync.
    pending: VecDeque<Measurement>,
    step: u64,
    loss: f32,
    /// Local apply engine: holds the velocity state and applies the
    /// served [`Hyper`] with the same fused kernel YellowFin uses.
    apply: MomentumSgd,
    last: Hyper,
    degraded_now: bool,
    degraded_steps: u64,
}

impl RemoteTuner {
    /// Connects and opens (or resumes) the session described by `spec`,
    /// with the robustness policy from the environment
    /// ([`RemoteTunerConfig::from_env`]).
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's rejection reason.
    pub fn connect(addr: impl ToSocketAddrs, spec: OpenSpec) -> Result<RemoteTuner, ClientError> {
        RemoteTuner::connect_with(addr, spec, RemoteTunerConfig::from_env())
    }

    /// Connects with an explicit robustness policy.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's rejection reason.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        spec: OpenSpec,
        cfg: RemoteTunerConfig,
    ) -> Result<RemoteTuner, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut client = Client::connect_with(&addrs[..], &cfg.client)?;
        let step = client.open(spec.clone())?;
        // The shadow can only mirror a stream it has seen from the
        // start; a mid-stream resume leaves degradation unavailable.
        let shadow = if step == 0 {
            Some(Session::new(spec.clone()).map_err(ClientError::Server)?)
        } else {
            None
        };
        Ok(RemoteTuner {
            addrs,
            spec,
            cfg,
            link: Link::Live(client),
            shadow,
            pending: VecDeque::new(),
            step,
            loss: 0.0,
            apply: MomentumSgd::new(0.0, 0.0),
            last: Hyper {
                lr: 0.0,
                momentum: 0.0,
                grad_scale: 1.0,
            },
            degraded_now: false,
            degraded_steps: 0,
        })
    }

    /// The next measurement index the server expects — 0 for a fresh
    /// session, the replay point after a resume.
    pub fn next_step(&self) -> u64 {
        self.step
    }

    /// Feeds the current training loss into the next measurement (the
    /// server's quality filter screens it; the tuner itself is
    /// loss-free). Defaults to 0.0 when never called.
    pub fn set_loss(&mut self, loss: f32) {
        self.loss = loss;
    }

    /// Whether the *last* step was served by the local shadow tuner
    /// (server unreachable) rather than the server.
    pub fn degraded(&self) -> bool {
        self.degraded_now
    }

    /// Total steps served by the shadow tuner so far.
    pub fn degraded_steps(&self) -> u64 {
        self.degraded_steps
    }

    /// The most recently served hyperparameters.
    pub fn last_hyper(&self) -> Hyper {
        self.last
    }

    /// Detaches the session server-side (it stays resumable) and
    /// returns the underlying client for further protocol use.
    ///
    /// # Errors
    ///
    /// Transport failures, the server's rejection reason, or
    /// [`ClientError::Io`] with `NotConnected` when the tuner is
    /// degraded or abandoned (there is no live connection to detach
    /// through).
    pub fn detach(self) -> Result<Client, ClientError> {
        let session = self.spec.session;
        match self.link {
            Link::Live(mut client) => {
                client.close_session(&session)?;
                Ok(client)
            }
            Link::Down { .. } | Link::Abandoned => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                format!("session {session:?} has no live server connection"),
            ))),
        }
    }

    /// The server's verdict for the current step, through whatever the
    /// link state demands: a live round-trip, a blocking reconnect loop
    /// on a fresh outage, a scheduled probe while degraded, or the
    /// shadow.
    fn tune(&mut self, step: u64, shadow_out: Option<Outcome>) -> Outcome {
        // Live fast path: one round-trip for the already-buffered
        // current measurement.
        let live_result = match &mut self.link {
            Link::Live(client) => {
                let m = self
                    .pending
                    .back()
                    .expect("live tune always has the current measurement buffered");
                Some(client.measure(&self.spec.session, m.step, m.loss, &m.grads))
            }
            _ => None,
        };
        match live_result {
            Some(Ok(reply)) => {
                self.pending.clear();
                self.degraded_now = false;
                let out = reply_to_outcome(reply);
                self.reconcile_shadow(&out, shadow_out.as_ref());
                return out;
            }
            Some(Err(e)) => {
                eprintln!(
                    "remote tuner ({}): step {step}: {e}; reconnecting",
                    self.spec.session
                );
                return self.fresh_outage(step, shadow_out);
            }
            None => {}
        }
        // Degraded paths: the shadow serves, with scheduled reconnect
        // probes while Down.
        let probe_gap = match &self.link {
            Link::Abandoned => return self.degraded_outcome(shadow_out),
            Link::Down {
                probe_at,
                probe_gap,
            } => {
                if step < *probe_at {
                    return self.degraded_outcome(shadow_out);
                }
                *probe_gap
            }
            Link::Live(_) => unreachable!("live path handled above"),
        };
        match self.try_resync() {
            Ok(out) => {
                self.degraded_now = false;
                self.reconcile_shadow(&out, shadow_out.as_ref());
                out
            }
            Err(ResyncError::Fatal(reason)) => {
                self.abandon(&reason);
                self.degraded_outcome(shadow_out)
            }
            Err(ResyncError::Transient) => {
                let gap = probe_gap.saturating_mul(2).min(self.cfg.probe_cap.max(1));
                self.link = Link::Down {
                    probe_at: step + gap,
                    probe_gap: gap,
                };
                self.degraded_outcome(shadow_out)
            }
        }
    }

    /// A live connection just failed: retry with backoff until the
    /// degradation budget runs out, then hand over to the shadow.
    fn fresh_outage(&mut self, step: u64, shadow_out: Option<Outcome>) -> Outcome {
        let budget = Instant::now() + self.cfg.degrade_after;
        let mut attempt = 0u32;
        loop {
            match self.try_resync() {
                Ok(out) => {
                    self.degraded_now = false;
                    self.reconcile_shadow(&out, shadow_out.as_ref());
                    return out;
                }
                Err(ResyncError::Fatal(reason)) => {
                    self.abandon(&reason);
                    return self.degraded_outcome(shadow_out);
                }
                Err(ResyncError::Transient) => {}
            }
            let delay = self.cfg.backoff.delay(attempt);
            attempt += 1;
            if Instant::now() + delay >= budget {
                break;
            }
            std::thread::sleep(delay);
        }
        if self.shadow.is_none() {
            panic!(
                "remote tuner ({}): server unreachable past the degradation budget \
                 and no shadow tuner is available (session was resumed mid-stream)",
                self.spec.session
            );
        }
        eprintln!(
            "remote tuner ({}): server unreachable for {:?}; degrading to the shadow tuner",
            self.spec.session, self.cfg.degrade_after
        );
        self.link = Link::Down {
            probe_at: step + 1,
            probe_gap: 1,
        };
        self.degraded_outcome(shadow_out)
    }

    /// One reconnect attempt: dial, re-open the session by name, and
    /// reconcile from the server's `opened{step}` replay point by
    /// replaying the pending buffer in order. The reply to the newest
    /// (current) measurement becomes this step's verdict; on success the
    /// link is live and the buffer is drained.
    fn try_resync(&mut self) -> Result<Outcome, ResyncError> {
        let mut client = Client::connect_with(&self.addrs[..], &self.cfg.client)
            .map_err(|_| ResyncError::Transient)?;
        let server_step = client
            .open(self.spec.clone())
            .map_err(|_| ResyncError::Transient)?;
        let newest = self
            .pending
            .back()
            .expect("resync always has the current measurement buffered")
            .step;
        if server_step > newest + 1 {
            return Err(ResyncError::Fatal(format!(
                "server is at step {server_step}, ahead of this trainer's step {newest}: \
                 another client drove the session"
            )));
        }
        let oldest = self.pending.front().expect("non-empty buffer").step;
        if server_step < oldest {
            return Err(ResyncError::Fatal(format!(
                "server re-opened at step {server_step}, below the oldest buffered \
                 measurement {oldest}: its snapshots were lost and replay is impossible"
            )));
        }
        // Entries older than the session's idempotent-replay window
        // (everything before step `server_step - 1`) were acknowledged
        // in a previous life and can never be replayed; drop them. The
        // newest entry always stays: its reply is this step's verdict.
        while self.pending.len() > 1
            && self.pending.front().expect("non-empty buffer").step + 1 < server_step
        {
            self.pending.pop_front();
        }
        // Replay through the client's send-ahead window: submissions
        // stream without waiting for each verdict, so a long outage's
        // buffer drains in roughly one round-trip plus bandwidth rather
        // than one round-trip per measurement. Verdicts arrive strictly
        // in order; the newest one is this step's outcome.
        let mut newest_reply = None;
        for m in &self.pending {
            let verdicts = client
                .submit_measure(&self.spec.session, m.step, m.loss, &m.grads)
                .map_err(|_| ResyncError::Transient)?;
            for (t, reply) in verdicts {
                if t == newest {
                    newest_reply = Some(reply);
                }
            }
        }
        for (t, reply) in client
            .drain_verdicts()
            .map_err(|_| ResyncError::Transient)?
        {
            if t == newest {
                newest_reply = Some(reply);
            }
        }
        let Some(reply) = newest_reply else {
            // The server acknowledged everything yet never answered the
            // newest step — a protocol violation; treat like a lost
            // reply and retry.
            return Err(ResyncError::Transient);
        };
        self.pending.clear();
        self.link = Link::Live(client);
        Ok(reply_to_outcome(reply))
    }

    /// Permanently gives up on the server; the shadow serves from here.
    fn abandon(&mut self, reason: &str) {
        if self.shadow.is_none() {
            panic!(
                "remote tuner ({}): {reason}; no shadow tuner available",
                self.spec.session
            );
        }
        eprintln!(
            "remote tuner ({}): {reason}; abandoning the server, the shadow tuner takes over",
            self.spec.session
        );
        self.link = Link::Abandoned;
        self.pending.clear();
    }

    /// Serves the shadow's verdict for a step the server never saw.
    fn degraded_outcome(&mut self, shadow_out: Option<Outcome>) -> Outcome {
        let Some(out) = shadow_out else {
            panic!(
                "remote tuner ({}): degraded with no shadow tuner \
                 (session was resumed mid-stream)",
                self.spec.session
            );
        };
        self.degraded_now = true;
        self.degraded_steps += 1;
        out
    }

    /// Cross-checks the server's verdict against the shadow's. They are
    /// bitwise identical by the session determinism contract; on a
    /// divergence (a bug, or a server driven by someone else) the
    /// shadow is discarded — serving it later would fork the
    /// trajectory.
    fn reconcile_shadow(&mut self, server: &Outcome, shadow: Option<&Outcome>) {
        let Some(shadow) = shadow else { return };
        if !outcomes_match(server, shadow) {
            eprintln!(
                "remote tuner ({}): shadow tuner diverged from the server \
                 (server {server:?}, shadow {shadow:?}); disabling degradation",
                self.spec.session
            );
            self.shadow = None;
        }
    }
}

fn reply_to_outcome(reply: MeasureReply) -> Outcome {
    match reply {
        MeasureReply::Tuned { hyper, clamped } => Outcome::Tuned { hyper, clamped },
        MeasureReply::Rejected { reason } => Outcome::Rejected { reason },
    }
}

/// Bitwise verdict equality (float fields compared as bit patterns;
/// rejection reasons compare as rejections regardless of wording).
fn outcomes_match(a: &Outcome, b: &Outcome) -> bool {
    match (a, b) {
        (
            Outcome::Tuned {
                hyper: x,
                clamped: cx,
            },
            Outcome::Tuned {
                hyper: y,
                clamped: cy,
            },
        ) => {
            cx == cy
                && x.lr.to_bits() == y.lr.to_bits()
                && x.momentum.to_bits() == y.momentum.to_bits()
                && x.grad_scale.to_bits() == y.grad_scale.to_bits()
        }
        (Outcome::Rejected { .. }, Outcome::Rejected { .. }) => true,
        _ => false,
    }
}

impl Optimizer for RemoteTuner {
    /// Streams the gradient to the server and returns the served
    /// (authority-clamped) hyperparameters; on an outage, reconnects
    /// with backoff and replays, or degrades to the shadow tuner per
    /// the module contract.
    ///
    /// # Panics
    ///
    /// Only when there is no graceful path left: the server is
    /// unreachable *and* no shadow is available (the session was
    /// resumed mid-stream, or the shadow was disabled after a
    /// divergence).
    fn observe(&mut self, _params: &[f32], grads: &[f32]) -> Hyper {
        let step = self.step;
        let loss = self.loss;
        let shadow_out = self.shadow.as_mut().map(|s| {
            s.measure(step, loss, grads)
                .unwrap_or_else(|e| panic!("remote tuner shadow: {e}"))
        });
        if !matches!(self.link, Link::Abandoned) {
            if self.pending.len() >= self.cfg.resync_limit {
                self.abandon(&format!(
                    "replay buffer hit its limit ({} measurements unacknowledged)",
                    self.cfg.resync_limit
                ));
            } else {
                self.pending.push_back(Measurement {
                    step,
                    loss,
                    grads: grads.to_vec(),
                });
            }
        }
        let outcome = self.tune(step, shadow_out);
        self.step += 1;
        if let Outcome::Tuned { hyper, .. } = outcome {
            self.last = hyper;
        }
        self.last
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        self.apply.step_shard(shard, params, grads, hyper);
    }

    fn learning_rate(&self) -> f32 {
        self.last.lr
    }

    fn set_learning_rate(&mut self, _lr: f32) {
        // The server's session owns the schedule; external decay must
        // not fight it (same contract as the in-process tuner).
    }

    fn is_self_tuning(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "remote-tuner"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::registry;
    use yf_serve::{Authority, FilterSpec, ServeConfig, Server};
    use yf_tensor::rng::Pcg32;

    #[test]
    fn serve_registry_names_resolve_in_the_fleet_registry() {
        // The serve crate sits below yf-experiments, so its optimizer
        // registry repeats the fleet constructors; this pins the two
        // name sets together so they cannot drift.
        for name in yf_serve::registry::OPTIMIZER_NAMES {
            assert!(
                registry::opt_builder(name).is_some(),
                "serve registry name {name:?} is unknown to the fleet registry"
            );
            assert!(
                yf_serve::registry::build_optimizer(name, 0.1).is_some(),
                "{name}"
            );
        }
    }

    #[test]
    fn remote_tuner_steps_bitwise_like_the_in_process_tuner() {
        // A trainer driving a RemoteTuner (measure on the server, apply
        // local) must walk the exact parameter trajectory of the same
        // tuner run in process.
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            snapshot_dir: None,
            ..ServeConfig::default()
        })
        .unwrap();
        let dim = 24;
        let mut spec = OpenSpec {
            session: "remote-parity".to_string(),
            optimizer: "yellowfin".to_string(),
            value: 1.0,
            dim,
            authority: Authority::default(),
            filter: FilterSpec::default(),
        };
        // Wide-open authority: the served stream is the raw tuner
        // output, so in-process YellowFin is the exact reference.
        spec.authority.max_lr_step = 1e9;
        spec.authority.max_momentum_step = 1.0;
        spec.authority.lr_max = 1e9;
        let mut remote = RemoteTuner::connect(server.local_addr(), spec).unwrap();
        let mut local = yf_serve::registry::build_optimizer("yellowfin", 1.0).unwrap();

        let mut rng = Pcg32::seed(41);
        let mut p_remote = vec![0.5f32; dim];
        let mut p_local = p_remote.clone();
        for step in 0..30 {
            let grads: Vec<f32> = (0..dim).map(|_| rng.uniform() - 0.5).collect();
            remote.step(&mut p_remote, &grads);
            local.step(&mut p_local, &grads);
            for (i, (a, b)) in p_remote.iter().zip(&p_local).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "step {step}, param {i}");
            }
        }
        assert_eq!(remote.learning_rate(), local.learning_rate());
        assert_eq!(remote.degraded_steps(), 0);
        assert!(!remote.degraded());
        let _ = remote.detach().unwrap();
    }

    #[test]
    fn remote_tuner_config_env_knobs_use_hardened_parsing() {
        std::env::set_var("YF_SERVE_CLIENT_DEGRADE_MS", "1500");
        std::env::set_var("YF_SERVE_CLIENT_RESYNC_LIMIT", "not-a-count");
        std::env::set_var("YF_SERVE_CLIENT_PROBE_CAP", "8");
        let cfg = RemoteTunerConfig::from_env();
        assert_eq!(cfg.degrade_after, Duration::from_millis(1500));
        assert_eq!(
            cfg.resync_limit,
            RemoteTunerConfig::default().resync_limit,
            "malformed falls back"
        );
        assert_eq!(cfg.probe_cap, 8);
        std::env::remove_var("YF_SERVE_CLIENT_DEGRADE_MS");
        std::env::remove_var("YF_SERVE_CLIENT_RESYNC_LIMIT");
        std::env::remove_var("YF_SERVE_CLIENT_PROBE_CAP");
    }
}
