//! CSV and markdown emission for the figure/table regenerators.

use crate::fleet::fsio::write_atomic;
use std::fs;
use std::path::PathBuf;

/// Directory where regenerators drop their CSV artifacts.
pub fn output_dir() -> PathBuf {
    let dir = std::env::var("YF_OUT_DIR").unwrap_or_else(|_| "target/experiments".to_string());
    PathBuf::from(dir)
}

/// Writes a CSV file with a header row under [`output_dir`], creating the
/// directory if needed. The write is atomic (tmp + fsync + rename), so a
/// crashed regenerator leaves either the previous artifact or the new
/// one — never a truncated CSV. Returns the path written.
///
/// # Panics
///
/// Panics if the file cannot be written (regenerators treat that as
/// fatal).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = output_dir();
    fs::create_dir_all(&dir).expect("create experiments output dir");
    let path = dir.join(name);
    let mut text = String::new();
    text.push_str(&header.join(","));
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    write_atomic(&path, text.as_bytes()).expect("write csv");
    path
}

/// Renders a two-dimensional table as github-flavored markdown.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        header.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Downsamples a per-iteration series to at most `points` evenly spaced
/// `(iteration, value)` pairs for compact printing.
pub fn downsample(series: &[f64], points: usize) -> Vec<(usize, f64)> {
    if series.is_empty() || points == 0 {
        return Vec::new();
    }
    let stride = (series.len() / points).max(1);
    let mut out: Vec<(usize, f64)> = series.iter().copied().enumerate().step_by(stride).collect();
    let last = series.len() - 1;
    if out.last().map(|&(i, _)| i) != Some(last) {
        out.push((last, series[last]));
    }
    out
}

/// Formats a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a != 0.0 && !(1e-3..1e5).contains(&a) {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints a labelled series (figure regenerators use this to emit the
/// paper's curves as text).
pub fn print_series(label: &str, series: &[(usize, f64)]) {
    println!("# {label}");
    for (i, v) in series {
        println!("{i}\t{}", fmt(*v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&series, 10);
        assert_eq!(d.first(), Some(&(0, 0.0)));
        assert_eq!(d.last(), Some(&(99, 99.0)));
        assert!(d.len() <= 12);
    }

    #[test]
    fn fmt_styles() {
        assert_eq!(fmt(1.5), "1.5000");
        assert_eq!(fmt(1e-9), "1.000e-9");
        assert!(fmt(f64::NAN).contains("NaN"));
    }

    #[test]
    fn write_csv_round_trip() {
        std::env::set_var("YF_OUT_DIR", std::env::temp_dir().join("yf-test-out"));
        let p = write_csv(
            "unit_test.csv",
            &["x", "y"],
            &[vec!["1".into(), "2".into()]],
        );
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        std::env::remove_var("YF_OUT_DIR");
    }
}
