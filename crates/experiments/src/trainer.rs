//! Synchronous and asynchronous training loops.
//!
//! Both loops drive the fused *measure → combine → apply* step pipeline:
//! per step, the measure phase fans per-shard partial reductions out over
//! the worker pool (`yf_optim::sharded::observe_sharded`), a deterministic
//! tree combine makes the tuning decision, and the apply phase fans
//! `step_shard`s out over the same shard plan (or named parameter
//! groups). Reductions are block-structured and updates per-coordinate,
//! so the trajectory is bit-identical for every shard count — sharding
//! only changes how the step is scheduled.

use crate::task::{TaskSource, TrainTask};
use yf_async::RoundRobinSimulator;
use yf_optim::schedule::Schedule;
use yf_optim::{sharded, Optimizer, ParamGroups};

/// Options for a training run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Iterations to train.
    pub iters: usize,
    /// Validate every this many iterations (0 disables validation).
    pub eval_every: usize,
    /// Learning-rate schedule applied on "epoch" boundaries.
    pub schedule: Schedule,
    /// Iterations per epoch for the schedule (0 disables epochs).
    pub iters_per_epoch: usize,
    /// Parallel shards for the optimizer apply phase: 0 = automatic
    /// (thread count for large models, 1 otherwise).
    pub shards: usize,
    /// Optional named parameter groups with per-group hyper overrides;
    /// when set, updates go through [`sharded::step_grouped`] (and the
    /// groups' own shard plan wins over [`RunConfig::shards`]).
    pub groups: Option<ParamGroups>,
}

impl RunConfig {
    /// A plain run: no validation, no schedule, automatic sharding.
    pub fn plain(iters: usize) -> Self {
        RunConfig {
            iters,
            eval_every: 0,
            schedule: Schedule::Constant,
            iters_per_epoch: 0,
            shards: 0,
            groups: None,
        }
    }

    /// Adds periodic validation.
    pub fn with_eval(mut self, every: usize) -> Self {
        self.eval_every = every;
        self
    }

    /// Fixes the shard count for the apply phase.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Trains with per-group hyper overrides.
    pub fn with_groups(mut self, groups: ParamGroups) -> Self {
        self.groups = Some(groups);
        self
    }

    /// The shard count a run over `dim` parameters will use.
    fn resolved_shards(&self, dim: usize) -> usize {
        sharded::auto_shards(self.shards, dim)
    }
}

/// The product of a training run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Per-iteration minibatch losses.
    pub losses: Vec<f32>,
    /// `(iteration, metric)` validation points.
    pub metrics: Vec<(u64, f64)>,
    /// Final parameters.
    pub final_params: Vec<f32>,
}

impl RunResult {
    /// The best validation metric seen, if any was recorded.
    pub fn best_metric(&self, lower_is_better: bool) -> Option<f64> {
        let vals = self.metrics.iter().map(|&(_, v)| v);
        if lower_is_better {
            vals.fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
        } else {
            vals.fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
        }
    }
}

/// A resumable snapshot of an in-progress training run: everything
/// [`train_resumable`] needs to continue bit-identically from step
/// `step` in a fresh process — the parameters, the loss/metric history
/// so far, the base learning rate the schedule scales, and the
/// optimizer's serialized state
/// ([`Optimizer::checkpoint_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Steps completed (the next step to run).
    pub step: u64,
    /// Base learning rate captured at run start (schedules scale it).
    pub base_lr: f32,
    /// Parameter vector after `step` steps.
    pub params: Vec<f32>,
    /// Losses of steps `0..step`.
    pub losses: Vec<f32>,
    /// Validation metrics recorded so far.
    pub metrics: Vec<(u64, f64)>,
    /// Serialized optimizer state.
    pub opt_state: String,
}

/// Progress callbacks from [`train_resumable`].
pub enum TrainEvent<'a> {
    /// A step just completed (0-based index).
    Step(u64),
    /// A periodic snapshot: fires after every `checkpoint_every` steps
    /// (never after the final step — the run result supersedes it), and
    /// only when the optimizer supports checkpointing.
    Checkpoint(&'a TrainCheckpoint),
}

/// Error resuming a run from a [`TrainCheckpoint`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResumeError {
    /// The checkpoint's parameter count does not match the task.
    DimMismatch {
        /// Parameters in the checkpoint.
        checkpoint: usize,
        /// Parameters the task expects.
        task: usize,
    },
    /// The checkpoint claims more completed steps than the run has.
    StepBeyondRun {
        /// Steps the checkpoint claims.
        step: u64,
        /// Total steps configured.
        iters: usize,
    },
    /// The optimizer rejected the serialized state.
    OptState(String),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::DimMismatch { checkpoint, task } => write!(
                f,
                "checkpoint has {checkpoint} parameters but the task has {task}"
            ),
            ResumeError::StepBeyondRun { step, iters } => {
                write!(f, "checkpoint step {step} exceeds the {iters}-step run")
            }
            ResumeError::OptState(e) => write!(f, "optimizer state rejected: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Trains synchronously: one gradient per step, measured globally and
/// applied over the configured shard plan (one `observe`, N parallel
/// `step_shard`s).
pub fn train(task: &mut dyn TrainTask, opt: &mut dyn Optimizer, cfg: &RunConfig) -> RunResult {
    train_resumable(task, opt, cfg, None, 0, |_| {}).expect("fresh runs cannot fail to resume")
}

/// [`train`] with checkpoint/resume: when `resume` is given, the run
/// restarts from that snapshot (restoring optimizer state and
/// fast-forwarding the task's batch stream) and produces a [`RunResult`]
/// bitwise identical to the uninterrupted run; when `checkpoint_every >
/// 0` and the optimizer supports checkpointing, a
/// [`TrainEvent::Checkpoint`] fires after every `checkpoint_every` steps.
/// [`TrainEvent::Step`] fires after every step regardless.
pub fn train_resumable(
    task: &mut dyn TrainTask,
    opt: &mut dyn Optimizer,
    cfg: &RunConfig,
    resume: Option<TrainCheckpoint>,
    checkpoint_every: usize,
    mut on_event: impl FnMut(TrainEvent<'_>),
) -> Result<RunResult, ResumeError> {
    let (start, mut params, mut result, base_lr) = match resume {
        Some(ckpt) => {
            if ckpt.params.len() != task.dim() {
                return Err(ResumeError::DimMismatch {
                    checkpoint: ckpt.params.len(),
                    task: task.dim(),
                });
            }
            if ckpt.step > cfg.iters as u64 {
                return Err(ResumeError::StepBeyondRun {
                    step: ckpt.step,
                    iters: cfg.iters,
                });
            }
            opt.restore_checkpoint(&ckpt.opt_state)
                .map_err(|e| ResumeError::OptState(e.to_string()))?;
            task.fast_forward(ckpt.step);
            let result = RunResult {
                losses: ckpt.losses,
                metrics: ckpt.metrics,
                final_params: Vec::new(),
            };
            (ckpt.step as usize, ckpt.params, result, ckpt.base_lr)
        }
        None => (
            0,
            task.init_params(),
            RunResult::default(),
            opt.learning_rate(),
        ),
    };
    let shards = cfg.resolved_shards(params.len());
    for step in start..cfg.iters {
        if cfg.iters_per_epoch > 0 && step % cfg.iters_per_epoch == 0 {
            let epoch = step / cfg.iters_per_epoch;
            cfg.schedule.apply(opt, base_lr, epoch);
        }
        let (loss, grad) = task.loss_grad_at(&params, step as u64);
        match &cfg.groups {
            Some(groups) => sharded::step_grouped(opt, groups, &mut params, &grad),
            None => sharded::step_sharded(opt, &mut params, &grad, shards),
        }
        result.losses.push(loss);
        if cfg.eval_every > 0 && (step + 1) % cfg.eval_every == 0 {
            let m = task.validate(&params);
            result.metrics.push((step as u64 + 1, m));
        }
        on_event(TrainEvent::Step(step as u64));
        let due = checkpoint_every > 0 && (step + 1) % checkpoint_every == 0;
        if due && step + 1 < cfg.iters {
            if let Some(opt_state) = opt.checkpoint_state() {
                let ckpt = TrainCheckpoint {
                    step: step as u64 + 1,
                    base_lr,
                    params: params.clone(),
                    losses: result.losses.clone(),
                    metrics: result.metrics.clone(),
                    opt_state,
                };
                on_event(TrainEvent::Checkpoint(&ckpt));
            }
        }
    }
    result.final_params = params;
    Ok(result)
}

/// Trains through the round-robin asynchronous simulator with `workers`
/// workers (gradient staleness `workers - 1`), applying updates over the
/// configured shard plan.
pub fn train_async(
    task: &mut dyn TrainTask,
    opt: &mut dyn Optimizer,
    workers: usize,
    cfg: &RunConfig,
) -> RunResult {
    let initial = task.init_params();
    let shards = cfg.resolved_shards(initial.len());
    let mut result = RunResult::default();
    let mut sim = RoundRobinSimulator::new(workers, initial).with_shards(shards);
    for step in 0..cfg.iters {
        let record = {
            let mut source = TaskSource::new(task);
            sim.step(&mut source, opt)
        };
        result.losses.push(record.loss);
        if cfg.eval_every > 0 && (step + 1) % cfg.eval_every == 0 {
            let m = task.validate(sim.params());
            result.metrics.push((step as u64 + 1, m));
        }
    }
    result.final_params = sim.params().to_vec();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ModelTask;
    use yf_nn::Mlp;
    use yf_optim::MomentumSgd;
    use yf_tensor::rng::Pcg32;
    use yf_tensor::Tensor;

    fn small_task(seed: u64) -> ModelTask<Mlp> {
        let mut rng = Pcg32::seed(seed);
        let mlp = Mlp::new(&[2, 8, 2], &mut rng);
        let mut data_rng = Pcg32::seed(seed + 1);
        ModelTask::new(
            mlp,
            move |_| {
                let x = Tensor::randn(&[8, 2], &mut data_rng);
                let y = (0..8)
                    .map(|r| usize::from(x.at(&[r, 0]) + x.at(&[r, 1]) > 0.0))
                    .collect();
                (x, y)
            },
            |m| {
                let mut rng = Pcg32::seed(999);
                let x = Tensor::randn(&[64, 2], &mut rng);
                let y: Vec<usize> = (0..64)
                    .map(|r| usize::from(x.at(&[r, 0]) + x.at(&[r, 1]) > 0.0))
                    .collect();
                f64::from(m.accuracy(&x, &y))
            },
            "accuracy",
            false,
        )
    }

    #[test]
    fn sync_training_learns() {
        let mut task = small_task(10);
        let mut opt = MomentumSgd::new(0.1, 0.9);
        let result = train(&mut task, &mut opt, &RunConfig::plain(400).with_eval(100));
        assert_eq!(result.losses.len(), 400);
        assert_eq!(result.metrics.len(), 4);
        let best = result.best_metric(false).unwrap();
        assert!(best > 0.9, "best accuracy {best}");
    }

    #[test]
    fn async_training_learns_with_staleness() {
        let mut task = small_task(11);
        let mut opt = MomentumSgd::new(0.02, 0.5);
        let result = train_async(
            &mut task,
            &mut opt,
            8,
            &RunConfig::plain(800).with_eval(200),
        );
        let best = result.best_metric(false).unwrap();
        assert!(best > 0.85, "best accuracy {best}");
    }

    #[test]
    fn async_with_one_worker_matches_sync() {
        let mut t1 = small_task(12);
        let mut t2 = small_task(12);
        let mut o1 = MomentumSgd::new(0.05, 0.9);
        let mut o2 = MomentumSgd::new(0.05, 0.9);
        let r1 = train(&mut t1, &mut o1, &RunConfig::plain(100));
        let r2 = train_async(&mut t2, &mut o2, 1, &RunConfig::plain(100));
        assert_eq!(r1.losses, r2.losses);
        assert_eq!(r1.final_params, r2.final_params);
    }

    #[test]
    fn schedule_decays_learning_rate() {
        let mut task = small_task(13);
        let mut opt = MomentumSgd::new(1.0, 0.0);
        let cfg = RunConfig {
            schedule: Schedule::EveryEpoch { factor: 0.5 },
            iters_per_epoch: 10,
            ..RunConfig::plain(30)
        };
        train(&mut task, &mut opt, &cfg);
        // After epochs 0, 1, 2 the last applied multiplier is 0.25.
        assert!((opt.learning_rate() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn sharded_training_is_bitwise_identical() {
        let mut t1 = small_task(21);
        let mut t2 = small_task(21);
        let mut o1 = MomentumSgd::new(0.1, 0.9);
        let mut o2 = MomentumSgd::new(0.1, 0.9);
        let r1 = train(&mut t1, &mut o1, &RunConfig::plain(120));
        let r2 = train(&mut t2, &mut o2, &RunConfig::plain(120).with_shards(4));
        assert_eq!(r1.losses, r2.losses);
        assert_eq!(r1.final_params, r2.final_params);
    }

    #[test]
    fn resumed_run_is_bitwise_identical_to_uninterrupted() {
        // Train straight through; train again, capture the step-40
        // checkpoint, and resume it in a *fresh* task + optimizer: the
        // resumed run must reproduce losses, metrics, and final
        // parameters bit-for-bit.
        let cfg = RunConfig::plain(100).with_eval(25);
        let mut t0 = small_task(31);
        let mut o0 = MomentumSgd::new(0.1, 0.9);
        let straight = train(&mut t0, &mut o0, &cfg);

        let mut t1 = small_task(31);
        let mut o1 = MomentumSgd::new(0.1, 0.9);
        let mut saved: Option<TrainCheckpoint> = None;
        let _ = train_resumable(&mut t1, &mut o1, &cfg, None, 40, |ev| {
            if let TrainEvent::Checkpoint(c) = ev {
                if c.step == 40 {
                    saved = Some(c.clone());
                }
            }
        })
        .unwrap();
        let saved = saved.expect("checkpoint at step 40");
        assert_eq!(saved.losses.len(), 40);

        let mut t2 = small_task(31);
        let mut o2 = MomentumSgd::new(0.1, 0.9);
        let resumed = train_resumable(&mut t2, &mut o2, &cfg, Some(saved), 0, |_| {}).unwrap();
        assert_eq!(straight.losses, resumed.losses);
        assert_eq!(straight.metrics, resumed.metrics);
        assert_eq!(straight.final_params, resumed.final_params);
    }

    #[test]
    fn resume_with_schedule_restores_decayed_lr() {
        let cfg = RunConfig {
            schedule: Schedule::EveryEpoch { factor: 0.5 },
            iters_per_epoch: 10,
            ..RunConfig::plain(40)
        };
        let mut t0 = small_task(32);
        let mut o0 = MomentumSgd::new(1.0, 0.0);
        let straight = train(&mut t0, &mut o0, &cfg);

        let mut t1 = small_task(32);
        let mut o1 = MomentumSgd::new(1.0, 0.0);
        let mut saved = None;
        // Step 15 sits mid-epoch: the resumed run must come back at the
        // decayed rate, not the base rate.
        let _ = train_resumable(&mut t1, &mut o1, &cfg, None, 15, |ev| {
            if let TrainEvent::Checkpoint(c) = ev {
                if c.step == 15 {
                    saved = Some(c.clone());
                }
            }
        })
        .unwrap();
        let mut t2 = small_task(32);
        let mut o2 = MomentumSgd::new(1.0, 0.0);
        let resumed =
            train_resumable(&mut t2, &mut o2, &cfg, Some(saved.unwrap()), 0, |_| {}).unwrap();
        assert_eq!(straight.losses, resumed.losses);
        assert_eq!(straight.final_params, resumed.final_params);
    }

    #[test]
    fn resume_rejects_mismatched_checkpoints() {
        let mut task = small_task(33);
        let mut opt = MomentumSgd::new(0.1, 0.9);
        let bad_dim = TrainCheckpoint {
            step: 1,
            base_lr: 0.1,
            params: vec![0.0; 3],
            losses: vec![0.0],
            metrics: vec![],
            opt_state: opt.checkpoint_state().unwrap(),
        };
        assert!(matches!(
            train_resumable(
                &mut task,
                &mut opt,
                &RunConfig::plain(10),
                Some(bad_dim),
                0,
                |_| {}
            ),
            Err(ResumeError::DimMismatch { .. })
        ));
        let dim = task.dim();
        let bad_step = TrainCheckpoint {
            step: 99,
            base_lr: 0.1,
            params: vec![0.0; dim],
            losses: vec![],
            metrics: vec![],
            opt_state: opt.checkpoint_state().unwrap(),
        };
        assert!(matches!(
            train_resumable(
                &mut task,
                &mut opt,
                &RunConfig::plain(10),
                Some(bad_step),
                0,
                |_| {}
            ),
            Err(ResumeError::StepBeyondRun { .. })
        ));
    }

    #[test]
    fn grouped_training_applies_overrides() {
        use yf_nn::param_groups;
        // Freezing every parameter group (lr scale 0) must leave the
        // model untouched, while the default groups reproduce the
        // ungrouped run bit-for-bit.
        let mut task = small_task(22);
        let groups = {
            let mut rng = Pcg32::seed(10);
            param_groups(&Mlp::new(&[2, 8, 2], &mut rng))
        };
        assert_eq!(groups.total(), task.dim());

        let mut frozen = groups.clone();
        assert!(frozen.scale_lr("", 0.0) > 0, "pattern matches all groups");
        let mut opt = MomentumSgd::new(0.1, 0.0);
        let init = task.init_params();
        let r = train(
            &mut task,
            &mut opt,
            &RunConfig::plain(5).with_groups(frozen),
        );
        assert_eq!(r.final_params, init, "lr scale 0 freezes the model");

        let mut t1 = small_task(23);
        let mut t2 = small_task(23);
        let mut o1 = MomentumSgd::new(0.1, 0.9);
        let mut o2 = MomentumSgd::new(0.1, 0.9);
        let plain = train(&mut t1, &mut o1, &RunConfig::plain(60));
        let grouped = train(
            &mut t2,
            &mut o2,
            &RunConfig::plain(60).with_groups(groups.with_shards(2)),
        );
        assert_eq!(plain.final_params, grouped.final_params);
    }
}
