//! Synchronous and asynchronous training loops.

use crate::task::{TaskSource, TrainTask};
use yf_async::RoundRobinSimulator;
use yf_optim::schedule::Schedule;
use yf_optim::Optimizer;

/// Options for a training run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Iterations to train.
    pub iters: usize,
    /// Validate every this many iterations (0 disables validation).
    pub eval_every: usize,
    /// Learning-rate schedule applied on "epoch" boundaries.
    pub schedule: Schedule,
    /// Iterations per epoch for the schedule (0 disables epochs).
    pub iters_per_epoch: usize,
}

impl RunConfig {
    /// A plain run: no validation, no schedule.
    pub fn plain(iters: usize) -> Self {
        RunConfig {
            iters,
            eval_every: 0,
            schedule: Schedule::Constant,
            iters_per_epoch: 0,
        }
    }

    /// Adds periodic validation.
    pub fn with_eval(mut self, every: usize) -> Self {
        self.eval_every = every;
        self
    }
}

/// The product of a training run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Per-iteration minibatch losses.
    pub losses: Vec<f32>,
    /// `(iteration, metric)` validation points.
    pub metrics: Vec<(u64, f64)>,
    /// Final parameters.
    pub final_params: Vec<f32>,
}

impl RunResult {
    /// The best validation metric seen, if any was recorded.
    pub fn best_metric(&self, lower_is_better: bool) -> Option<f64> {
        let vals = self.metrics.iter().map(|&(_, v)| v);
        if lower_is_better {
            vals.fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
        } else {
            vals.fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
        }
    }
}

/// Trains synchronously: one gradient per step, applied immediately.
pub fn train(task: &mut dyn TrainTask, opt: &mut dyn Optimizer, cfg: &RunConfig) -> RunResult {
    let mut params = task.init_params();
    let base_lr = opt.learning_rate();
    let mut result = RunResult::default();
    for step in 0..cfg.iters {
        if cfg.iters_per_epoch > 0 && step % cfg.iters_per_epoch == 0 {
            let epoch = step / cfg.iters_per_epoch;
            cfg.schedule.apply(opt, base_lr, epoch);
        }
        let (loss, grad) = task.loss_grad_at(&params, step as u64);
        opt.step(&mut params, &grad);
        result.losses.push(loss);
        if cfg.eval_every > 0 && (step + 1) % cfg.eval_every == 0 {
            let m = task.validate(&params);
            result.metrics.push((step as u64 + 1, m));
        }
    }
    result.final_params = params;
    result
}

/// Trains through the round-robin asynchronous simulator with `workers`
/// workers (gradient staleness `workers - 1`).
pub fn train_async(
    task: &mut dyn TrainTask,
    opt: &mut dyn Optimizer,
    workers: usize,
    cfg: &RunConfig,
) -> RunResult {
    let initial = task.init_params();
    let mut result = RunResult::default();
    let mut sim = RoundRobinSimulator::new(workers, initial);
    for step in 0..cfg.iters {
        let record = {
            let mut source = TaskSource::new(task);
            sim.step(&mut source, opt)
        };
        result.losses.push(record.loss);
        if cfg.eval_every > 0 && (step + 1) % cfg.eval_every == 0 {
            let m = task.validate(sim.params());
            result.metrics.push((step as u64 + 1, m));
        }
    }
    result.final_params = sim.params().to_vec();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ModelTask;
    use yf_nn::Mlp;
    use yf_optim::MomentumSgd;
    use yf_tensor::rng::Pcg32;
    use yf_tensor::Tensor;

    fn small_task(seed: u64) -> ModelTask<Mlp> {
        let mut rng = Pcg32::seed(seed);
        let mlp = Mlp::new(&[2, 8, 2], &mut rng);
        let mut data_rng = Pcg32::seed(seed + 1);
        ModelTask::new(
            mlp,
            move |_| {
                let x = Tensor::randn(&[8, 2], &mut data_rng);
                let y = (0..8)
                    .map(|r| usize::from(x.at(&[r, 0]) + x.at(&[r, 1]) > 0.0))
                    .collect();
                (x, y)
            },
            |m| {
                let mut rng = Pcg32::seed(999);
                let x = Tensor::randn(&[64, 2], &mut rng);
                let y: Vec<usize> = (0..64)
                    .map(|r| usize::from(x.at(&[r, 0]) + x.at(&[r, 1]) > 0.0))
                    .collect();
                f64::from(m.accuracy(&x, &y))
            },
            "accuracy",
            false,
        )
    }

    #[test]
    fn sync_training_learns() {
        let mut task = small_task(10);
        let mut opt = MomentumSgd::new(0.1, 0.9);
        let result = train(&mut task, &mut opt, &RunConfig::plain(400).with_eval(100));
        assert_eq!(result.losses.len(), 400);
        assert_eq!(result.metrics.len(), 4);
        let best = result.best_metric(false).unwrap();
        assert!(best > 0.9, "best accuracy {best}");
    }

    #[test]
    fn async_training_learns_with_staleness() {
        let mut task = small_task(11);
        let mut opt = MomentumSgd::new(0.02, 0.5);
        let result = train_async(
            &mut task,
            &mut opt,
            8,
            &RunConfig::plain(800).with_eval(200),
        );
        let best = result.best_metric(false).unwrap();
        assert!(best > 0.85, "best accuracy {best}");
    }

    #[test]
    fn async_with_one_worker_matches_sync() {
        let mut t1 = small_task(12);
        let mut t2 = small_task(12);
        let mut o1 = MomentumSgd::new(0.05, 0.9);
        let mut o2 = MomentumSgd::new(0.05, 0.9);
        let r1 = train(&mut t1, &mut o1, &RunConfig::plain(100));
        let r2 = train_async(&mut t2, &mut o2, 1, &RunConfig::plain(100));
        assert_eq!(r1.losses, r2.losses);
        assert_eq!(r1.final_params, r2.final_params);
    }

    #[test]
    fn schedule_decays_learning_rate() {
        let mut task = small_task(13);
        let mut opt = MomentumSgd::new(1.0, 0.0);
        let cfg = RunConfig {
            iters: 30,
            eval_every: 0,
            schedule: Schedule::EveryEpoch { factor: 0.5 },
            iters_per_epoch: 10,
        };
        train(&mut task, &mut opt, &cfg);
        // After epochs 0, 1, 2 the last applied multiplier is 0.25.
        assert!((opt.learning_rate() - 0.25).abs() < 1e-6);
    }
}
