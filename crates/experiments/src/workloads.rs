//! Seeded constructors for every workload in the paper's evaluation.
//!
//! Each constructor mirrors one row of Table 3 (at reduced scale; see
//! DESIGN.md §3 for the substitution rationale) and returns a boxed
//! [`TrainTask`] ready for the harness. All tasks are deterministic in
//! `seed`.

use crate::task::{ModelTask, TrainTask};
use yf_autograd::Graph;
use yf_data::images::SyntheticImages;
use yf_data::text::{CfgParseText, LmSample, MarkovText, TextSource, ZipfBigramText};
use yf_data::translation::{bleu4, special, TranslationTask};
use yf_nn::{
    LmBatch, LstmLm, LstmLmConfig, ParamNodes, ResNet, ResNetConfig, Seq2Seq, Seq2SeqConfig,
    SeqBatch, SupervisedModel,
};
use yf_tensor::rng::Pcg32;

/// Mirror of the paper's Table 3 rows for this reproduction's scale.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Workload key (e.g. `"cifar10-resnet"`).
    pub name: &'static str,
    /// The paper's corresponding dataset/model.
    pub paper_counterpart: &'static str,
    /// Free-form architecture summary.
    pub architecture: String,
    /// Parameter count of the constructed model.
    pub parameters: usize,
    /// Validation metric name.
    pub metric: &'static str,
}

/// Batch size shared by the image workloads.
pub const IMAGE_BATCH: usize = 8;
/// Batch size shared by the sequence workloads.
pub const SEQ_BATCH: usize = 8;

fn lm_perplexity_validator(val_batch: LmBatch) -> impl FnMut(&LstmLm) -> f64 + Send + 'static {
    move |model: &LstmLm| {
        let mut g = Graph::new();
        let (loss, _) = model.loss(&mut g, &val_batch);
        let l = f64::from(g.value(loss).data()[0]);
        // Perplexity = exp(loss); clamp so diverged runs stay plottable.
        l.min(30.0).exp()
    }
}

/// CIFAR10-like: basic-block ResNet on 10-class synthetic images.
pub fn cifar10_like(seed: u64) -> Box<dyn TrainTask> {
    let mut rng = Pcg32::seed_stream(seed, 0x10);
    let net = ResNet::new(&ResNetConfig::cifar10_like(10), &mut rng);
    let mut data = SyntheticImages::new(10, 3, 10, 0.35, seed ^ 0xa0);
    let (val_x, val_y) = data.validation_batch(64, seed ^ 0xa1);
    Box::new(ModelTask::new(
        net,
        move |_| data.batch(IMAGE_BATCH),
        move |m: &ResNet| f64::from(m.accuracy(&val_x, &val_y)),
        "val accuracy",
        false,
    ))
}

/// CIFAR100-like: bottleneck ResNet on 20-class synthetic images.
pub fn cifar100_like(seed: u64) -> Box<dyn TrainTask> {
    let mut rng = Pcg32::seed_stream(seed, 0x11);
    let net = ResNet::new(&ResNetConfig::cifar100_like(20), &mut rng);
    let mut data = SyntheticImages::new(20, 3, 10, 0.3, seed ^ 0xb0);
    let (val_x, val_y) = data.validation_batch(64, seed ^ 0xb1);
    Box::new(ModelTask::new(
        net,
        move |_| data.batch(IMAGE_BATCH),
        move |m: &ResNet| f64::from(m.accuracy(&val_x, &val_y)),
        "val accuracy",
        false,
    ))
}

/// ResNeXt-like: grouped-convolution bottleneck ResNet (Appendix J.4).
/// Noisier and wider-class than the CIFAR-like tasks so its validation
/// accuracy does not saturate (Figure 11 needs an ordering to measure).
pub fn resnext_like(seed: u64) -> Box<dyn TrainTask> {
    let mut rng = Pcg32::seed_stream(seed, 0x12);
    let net = ResNet::new(&ResNetConfig::resnext_like(16, 2), &mut rng);
    let mut data = SyntheticImages::new(16, 3, 10, 0.9, seed ^ 0xc0);
    let (val_x, val_y) = data.validation_batch(96, seed ^ 0xc1);
    Box::new(ModelTask::new(
        net,
        move |_| data.batch(IMAGE_BATCH),
        move |m: &ResNet| f64::from(m.accuracy(&val_x, &val_y)),
        "val accuracy",
        false,
    ))
}

fn lm_task(
    model: LstmLm,
    mut source: impl TextSource + Send + 'static,
    time: usize,
    seed_tag: &'static str,
) -> Box<dyn TrainTask> {
    let _ = seed_tag;
    let spec = LmSample {
        batch: SEQ_BATCH,
        time,
    };
    let (vi, vt) = source.lm_arrays(LmSample { batch: 16, time });
    let val_batch = LmBatch::new(vi, vt, 16, time);
    Box::new(ModelTask::new(
        model,
        move |_| {
            let (i, t) = source.lm_arrays(spec);
            LmBatch::new(i, t, spec.batch, spec.time)
        },
        lm_perplexity_validator(val_batch),
        "val perplexity",
        true,
    ))
}

/// PTB-like: 2-layer word LSTM on Zipf-bigram text.
pub fn ptb_like(seed: u64) -> Box<dyn TrainTask> {
    let vocab = 48;
    let mut rng = Pcg32::seed_stream(seed, 0x13);
    let model = LstmLm::new(LstmLmConfig::word_like(vocab), &mut rng);
    let source = ZipfBigramText::new(vocab, 1.0, seed ^ 0xd0);
    lm_task(model, source, 12, "ptb")
}

/// TinyShakespeare-like: 2-layer char LSTM on Markov text.
pub fn ts_like(seed: u64) -> Box<dyn TrainTask> {
    let vocab = 26;
    let mut rng = Pcg32::seed_stream(seed, 0x14);
    let model = LstmLm::new(LstmLmConfig::char_like(vocab), &mut rng);
    let source = MarkovText::new(vocab, 3, seed ^ 0xe0);
    lm_task(model, source, 16, "ts")
}

/// Tied-embedding word LSTM (Appendix J.4).
pub fn tied_lstm_like(seed: u64) -> Box<dyn TrainTask> {
    let vocab = 48;
    let mut rng = Pcg32::seed_stream(seed, 0x15);
    let model = LstmLm::new(LstmLmConfig::tied_like(vocab), &mut rng);
    let source = ZipfBigramText::new(vocab, 1.0, seed ^ 0xf0);
    lm_task(model, source, 12, "tied")
}

/// An LSTM variant with inflated recurrent weights and long sequences —
/// the exploding-gradient objective of Figure 6.
pub fn exploding_lstm_like(seed: u64) -> Box<dyn TrainTask> {
    let vocab = 26;
    let mut rng = Pcg32::seed_stream(seed, 0x16);
    let model = LstmLm::new(
        LstmLmConfig {
            recurrent_scale: 2.2,
            ..LstmLmConfig::char_like(vocab)
        },
        &mut rng,
    );
    let source = MarkovText::new(vocab, 3, seed ^ 0x1f0);
    lm_task(model, source, 32, "exploding")
}

/// WSJ-like: parsing as language modeling on CFG bracket strings, with a
/// bracket-F1 validation metric.
pub fn wsj_like(seed: u64) -> Box<dyn TrainTask> {
    let words = 18;
    let mut rng = Pcg32::seed_stream(seed, 0x17);
    let mut source = CfgParseText::new(words, 4, seed ^ 0x100);
    let vocab = source.vocab();
    let model = LstmLm::new(
        LstmLmConfig {
            vocab,
            embed: 16,
            hidden: 20,
            layers: 2,
            tied: false,
            recurrent_scale: 1.0,
        },
        &mut rng,
    );
    let time = 16;
    let (vi, vt) = source.lm_arrays(LmSample { batch: 16, time });
    let val_batch = LmBatch::new(vi, vt, 16, time);
    let spec = LmSample {
        batch: SEQ_BATCH,
        time,
    };
    Box::new(ModelTask::new(
        model,
        move |_| {
            let (i, t) = source.lm_arrays(spec);
            LmBatch::new(i, t, spec.batch, spec.time)
        },
        move |model: &LstmLm| {
            // Teacher-forced predictions on the validation batch, scored
            // with bracket F1 (the parse-F1 surrogate; DESIGN.md §3).
            let mut g = Graph::new();
            let mut nodes = ParamNodes::new();
            let logits = model.logits(&mut g, &mut nodes, &val_batch);
            let v = g.value(logits);
            let k = v.shape()[1];
            let preds: Vec<usize> = (0..v.shape()[0])
                .map(|r| {
                    let row = &v.data()[r * k..(r + 1) * k];
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                })
                .collect();
            let targets = model.reorder_targets(&val_batch);
            CfgParseText::bracket_f1(&preds, &targets)
        },
        "bracket F1",
        false,
    ))
}

/// Translation: LSTM seq2seq on the synthetic bijective task, validated
/// with corpus BLEU-4 over greedy decodes (Table 1).
pub fn translation_like(seed: u64, recurrent_scale: f32) -> Box<dyn TrainTask> {
    let words = 12;
    let len = 6;
    let mut task = TranslationTask::new(words, len, seed ^ 0x200);
    let vocab = task.vocab();
    let mut rng = Pcg32::seed_stream(seed, 0x18);
    let model = Seq2Seq::new(
        Seq2SeqConfig {
            recurrent_scale,
            ..Seq2SeqConfig::table1_like(vocab)
        },
        &mut rng,
    );
    // Fixed validation set for BLEU.
    let mut val_task = TranslationTask::new(words, len, seed ^ 0x200);
    let val_sources: Vec<Vec<usize>> = (0..12).map(|_| val_task.source()).collect();
    let val_refs: Vec<Vec<usize>> = val_sources.iter().map(|s| val_task.translate(s)).collect();
    Box::new(ModelTask::new(
        model,
        move |_| {
            let (src, tgt_in, tgt_out) = task.batch_arrays(SEQ_BATCH);
            SeqBatch::new(src, tgt_in, tgt_out, SEQ_BATCH, len, len)
        },
        move |m: &Seq2Seq| {
            let decodes: Vec<Vec<usize>> = val_sources
                .iter()
                .map(|s| m.greedy_decode(s, special::BOS, len))
                .collect();
            bleu4(&decodes, &val_refs)
        },
        "BLEU4",
        false,
    ))
}

/// Seeded constructor for a boxed training task.
pub type TaskBuilder = fn(u64) -> Box<dyn TrainTask>;

/// The five Table 2 workloads in paper order, with constructors.
pub fn table2_workloads() -> Vec<(&'static str, TaskBuilder)> {
    vec![
        ("CIFAR10", cifar10_like as TaskBuilder),
        ("CIFAR100", cifar100_like),
        ("PTB", ptb_like),
        ("TS", ts_like),
        ("WSJ", wsj_like),
    ]
}

/// Specification rows mirroring Table 3 for every workload in the
/// reproduction.
pub fn spec_table() -> Vec<WorkloadSpec> {
    let describe = |name: &'static str,
                    paper: &'static str,
                    arch: String,
                    task: Box<dyn TrainTask>,
                    metric: &'static str| WorkloadSpec {
        name,
        paper_counterpart: paper,
        architecture: arch,
        parameters: task.dim(),
        metric,
    };
    vec![
        describe(
            "cifar10-resnet",
            "CIFAR10 ResNet, 110 layers, basic blocks",
            "basic ResNet, stages [2,2], width 4, 10x10x3 synthetic images".into(),
            cifar10_like(0),
            "val accuracy",
        ),
        describe(
            "cifar100-resnet",
            "CIFAR100 ResNet, 164 layers, bottleneck blocks",
            "bottleneck ResNet, stages [2,2], width 8, 20 classes".into(),
            cifar100_like(0),
            "val accuracy",
        ),
        describe(
            "resnext",
            "ResNeXt 29 (2x64d), Appendix J.4",
            "bottleneck ResNet with 2 channel groups".into(),
            resnext_like(0),
            "val accuracy",
        ),
        describe(
            "ptb-lstm",
            "PTB word LSTM: 2 layers, 200 hidden, 10k vocab",
            "2-layer word LSTM, 24 hidden, 48-word Zipf-bigram vocab".into(),
            ptb_like(0),
            "val perplexity",
        ),
        describe(
            "ts-lstm",
            "TinyShakespeare char LSTM: 2 layers, 128 hidden, 65 vocab",
            "2-layer char LSTM, 16 hidden, 26-symbol Markov chain".into(),
            ts_like(0),
            "val perplexity",
        ),
        describe(
            "wsj-lstm",
            "WSJ parsing LSTM: 3 layers, 500 hidden, 6922 vocab",
            "2-layer LSTM, 20 hidden, CFG bracket strings (parsing as LM)".into(),
            wsj_like(0),
            "bracket F1",
        ),
        describe(
            "tied-lstm",
            "Tied LSTM (Press & Wolf), 650 dims, Appendix J.4",
            "2-layer word LSTM with tied input/output embeddings".into(),
            tied_lstm_like(0),
            "val perplexity",
        ),
        describe(
            "seq2seq",
            "Conv seq2seq (Gehring et al.) on IWSLT'14 De-En",
            "LSTM encoder-decoder on bijective synthetic translation".into(),
            translation_like(0, 1.15),
            "BLEU4",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_produces_finite_loss_and_grad() {
        let builders: Vec<(&str, Box<dyn TrainTask>)> = vec![
            ("cifar10", cifar10_like(1)),
            ("cifar100", cifar100_like(1)),
            ("resnext", resnext_like(1)),
            ("ptb", ptb_like(1)),
            ("ts", ts_like(1)),
            ("tied", tied_lstm_like(1)),
            ("wsj", wsj_like(1)),
            ("seq2seq", translation_like(1, 1.0)),
            ("exploding", exploding_lstm_like(1)),
        ];
        for (name, mut task) in builders {
            let p = task.init_params();
            assert_eq!(p.len(), task.dim(), "{name}: dim mismatch");
            let (loss, grad) = task.loss_grad_at(&p, 0);
            assert!(loss.is_finite() && loss > 0.0, "{name}: loss {loss}");
            assert_eq!(grad.len(), p.len(), "{name}: grad length");
            assert!(
                grad.iter().all(|g| g.is_finite()),
                "{name}: non-finite grads"
            );
            let metric = task.validate(&p);
            assert!(metric.is_finite(), "{name}: metric {metric}");
        }
    }

    #[test]
    fn workloads_are_deterministic_in_seed() {
        let mut a = ptb_like(7);
        let mut b = ptb_like(7);
        let p = a.init_params();
        assert_eq!(p, b.init_params());
        let (la, ga) = a.loss_grad_at(&p, 3);
        let (lb, gb) = b.loss_grad_at(&p, 3);
        assert_eq!(la, lb);
        assert_eq!(ga, gb);
    }

    #[test]
    fn spec_table_covers_all_workloads() {
        let specs = spec_table();
        assert_eq!(specs.len(), 8);
        assert!(specs.iter().all(|s| s.parameters > 0));
    }

    #[test]
    fn image_task_learns_under_momentum_sgd() {
        use crate::trainer::{train, RunConfig};
        use yf_optim::MomentumSgd;
        let mut task = cifar10_like(3);
        let mut opt = MomentumSgd::new(0.02, 0.9);
        let result = train(
            task.as_mut(),
            &mut opt,
            &RunConfig::plain(120).with_eval(60),
        );
        let early: f32 = result.losses[..20].iter().sum::<f32>() / 20.0;
        let late: f32 = result.losses[100..].iter().sum::<f32>() / 20.0;
        assert!(late < early, "loss should drop: {early} -> {late}");
    }
}
