//! Experiment harness for the YellowFin reproduction.
//!
//! Everything the per-figure regenerators in `yf-bench` share lives here:
//!
//! - [`task`]: the type-erased [`task::TrainTask`] interface every
//!   workload implements, plus the adapter that turns a
//!   [`yf_nn::SupervisedModel`] into one;
//! - [`trainer`]: synchronous and asynchronous training loops producing
//!   loss curves and periodic validation metrics;
//! - [`smoothing`]: the uniform-window loss smoothing of Section 5.1;
//! - [`speedup`]: the paper's speedup protocol (common lowest smoothed
//!   loss, ratio of iterations to reach it);
//! - [`grid`]: learning-rate grid search with multi-seed averaging
//!   (Appendix I protocol);
//! - [`fleet`]: the fault-tolerant multi-process grid runner — durable
//!   job journal, per-cell checkpoint/resume, lease-based straggler
//!   recovery, and deterministic fault injection;
//! - [`workloads`]: seeded constructors for every workload in the
//!   evaluation (Table 3 at reduced scale) plus the specification table;
//! - [`serve_client`]: the remote-tuner client — an [`yf_optim::Optimizer`]
//!   whose measure phase runs in a `yf-serve` session over TCP;
//! - [`report`]: CSV/markdown emission under `target/experiments/`.

pub mod fleet;
pub mod grid;
pub mod report;
pub mod serve_client;
pub mod smoothing;
pub mod speedup;
pub mod task;
pub mod trainer;
pub mod workloads;
