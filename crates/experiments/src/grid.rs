//! Learning-rate grid search with multi-seed averaging (Appendix I).
//!
//! The paper tunes Adam and momentum SGD on logarithmic learning-rate
//! grids, averages training losses over 3 random seeds, and picks the
//! configuration with the lowest averaged smoothed loss.
//!
//! Every `(value, seed)` cell is an independent training run, so the
//! grid fans them out over the persistent worker pool (up to the kernel-layer
//! thread count) and collects results back in cell order — the outcome is
//! bit-identical to the sequential sweep, just wall-clock shorter.

use crate::smoothing::smooth;
use crate::task::TrainTask;
use crate::trainer::{train, RunConfig, RunResult};
use yf_optim::Optimizer;
use yf_tensor::parallel;

/// Typed error from the fallible grid entry points ([`try_grid_search`],
/// [`try_average_curves`], [`try_average_metrics`], [`score_results`]).
/// The panicking wrappers keep their historical messages by formatting
/// these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// `values` was empty.
    EmptyGrid,
    /// `seeds` was empty.
    NoSeeds,
    /// No loss curves to average.
    NoCurves,
    /// Loss curves disagree on length.
    RaggedCurves {
        /// Length of the first curve.
        expected: usize,
        /// Length of the offending curve.
        got: usize,
    },
    /// Metric series disagree on length.
    RaggedMetrics {
        /// Length of the first series.
        expected: usize,
        /// Length of the offending series.
        got: usize,
    },
    /// Metric series validated at different iterations.
    MisalignedMetrics {
        /// Iteration recorded by the first run.
        expected: u64,
        /// Iteration recorded by the offending run.
        got: u64,
    },
    /// A result set does not cover every `(value, seed)` cell.
    MissingResults {
        /// Cells expected (`values.len() * seeds.len()`).
        expected: usize,
        /// Results provided.
        got: usize,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::EmptyGrid => write!(f, "empty grid"),
            GridError::NoSeeds => write!(f, "no seeds"),
            GridError::NoCurves => write!(f, "no curves"),
            GridError::RaggedCurves { expected, got } => {
                write!(f, "ragged curves (expected length {expected}, got {got})")
            }
            GridError::RaggedMetrics { expected, got } => {
                write!(f, "ragged runs (expected {expected} metrics, got {got})")
            }
            GridError::MisalignedMetrics { expected, got } => {
                write!(f, "misaligned iterations (expected {expected}, got {got})")
            }
            GridError::MissingResults { expected, got } => {
                write!(f, "expected {expected} cell results, got {got}")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// Outcome of one grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome {
    /// The winning grid value (e.g. learning rate).
    pub best_value: f32,
    /// Seed-averaged *smoothed* loss curve of the winner.
    pub best_curve: Vec<f64>,
    /// Seed-averaged validation metrics of the winner
    /// (iteration, metric), averaged pointwise across seeds.
    pub best_metrics: Vec<(u64, f64)>,
    /// `(value, lowest smoothed loss)` for every grid point.
    pub scores: Vec<(f32, f64)>,
}

/// Averages loss curves pointwise (all must have equal length).
///
/// # Errors
///
/// [`GridError::NoCurves`] on an empty slice, [`GridError::RaggedCurves`]
/// when the curves disagree on length.
pub fn try_average_curves(curves: &[Vec<f32>]) -> Result<Vec<f32>, GridError> {
    let first = curves.first().ok_or(GridError::NoCurves)?;
    let n = first.len();
    let mut out = vec![0.0f32; n];
    for c in curves {
        if c.len() != n {
            return Err(GridError::RaggedCurves {
                expected: n,
                got: c.len(),
            });
        }
        for (o, &v) in out.iter_mut().zip(c) {
            *o += v;
        }
    }
    for o in &mut out {
        *o /= curves.len() as f32;
    }
    Ok(out)
}

/// Panicking wrapper around [`try_average_curves`] for call sites that
/// treat bad inputs as bugs.
///
/// # Panics
///
/// Panics on empty or ragged inputs.
pub fn average_curves(curves: &[Vec<f32>]) -> Vec<f32> {
    try_average_curves(curves).unwrap_or_else(|e| panic!("average_curves: {e}"))
}

/// Runs `make_opt(value)` for every grid `value` on `make_task(seed)` for
/// every seed — all `(value, seed)` cells fanned out on pool worker
/// threads, results gathered in deterministic cell order — smooths the
/// seed-averaged loss with `window`, and picks the value whose curve
/// attains the lowest smoothed loss.
///
/// The factories run on worker threads, hence the `Fn + Sync` bounds;
/// build per-run state (RNGs, models) *inside* the returned task, keyed
/// on the seed, exactly as the sequential grid already required for
/// reproducibility.
///
/// # Panics
///
/// Panics if `values` or `seeds` is empty.
pub fn grid_search(
    values: &[f32],
    seeds: &[u64],
    window: usize,
    cfg: &RunConfig,
    make_task: impl Fn(u64) -> Box<dyn TrainTask> + Sync,
    make_opt: impl Fn(f32) -> Box<dyn Optimizer> + Sync,
) -> GridOutcome {
    try_grid_search(values, seeds, window, cfg, make_task, make_opt)
        .unwrap_or_else(|e| panic!("grid_search: {e}"))
}

/// Fallible [`grid_search`]: returns a typed [`GridError`] on empty or
/// inconsistent inputs instead of panicking.
///
/// # Errors
///
/// [`GridError::EmptyGrid`] / [`GridError::NoSeeds`] on empty inputs, and
/// whatever [`score_results`] reports for inconsistent run results.
pub fn try_grid_search(
    values: &[f32],
    seeds: &[u64],
    window: usize,
    cfg: &RunConfig,
    make_task: impl Fn(u64) -> Box<dyn TrainTask> + Sync,
    make_opt: impl Fn(f32) -> Box<dyn Optimizer> + Sync,
) -> Result<GridOutcome, GridError> {
    if values.is_empty() {
        return Err(GridError::EmptyGrid);
    }
    if seeds.is_empty() {
        return Err(GridError::NoSeeds);
    }

    // One independent (value, seed) training run per cell, fanned out on
    // pool workers; `results` keeps cell order, so everything below is
    // bitwise identical to the sequential sweep.
    let cells: Vec<(f32, u64)> = grid_cells(values, seeds);
    let mut results: Vec<Option<RunResult>> = (0..cells.len()).map(|_| None).collect();
    let threads = parallel::num_threads().min(cells.len());
    parallel::chunks_mut(&mut results, 1, threads, |first, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            let (value, seed) = cells[first + i];
            let mut task = make_task(seed);
            let mut opt = make_opt(value);
            *slot = Some(train(task.as_mut(), opt.as_mut(), cfg));
        }
    });
    let results: Vec<RunResult> = results
        .into_iter()
        .map(|r| r.expect("grid cell ran"))
        .collect();
    score_results(values, seeds, window, &results)
}

/// The canonical `(value, seed)` cell order every grid driver uses:
/// value-major, seeds inner — cell `i` covers
/// `(values[i / seeds.len()], seeds[i % seeds.len()])`.
pub fn grid_cells(values: &[f32], seeds: &[u64]) -> Vec<(f32, u64)> {
    values
        .iter()
        .flat_map(|&v| seeds.iter().map(move |&s| (v, s)))
        .collect()
}

/// Scores a complete, cell-ordered result set (one [`RunResult`] per
/// [`grid_cells`] entry) into a [`GridOutcome`]. This is the single
/// merge path shared by the in-process [`grid_search`] and the fleet
/// coordinator, so a sweep assembled from durable per-cell results is
/// bitwise identical to an uninterrupted in-process sweep.
///
/// # Errors
///
/// [`GridError::MissingResults`] when the result count does not cover the
/// grid, plus the [`try_average_curves`] / [`try_average_metrics`] errors
/// for inconsistent runs.
pub fn score_results(
    values: &[f32],
    seeds: &[u64],
    window: usize,
    results: &[RunResult],
) -> Result<GridOutcome, GridError> {
    if values.is_empty() {
        return Err(GridError::EmptyGrid);
    }
    if seeds.is_empty() {
        return Err(GridError::NoSeeds);
    }
    if results.len() != values.len() * seeds.len() {
        return Err(GridError::MissingResults {
            expected: values.len() * seeds.len(),
            got: results.len(),
        });
    }
    let mut results = results.iter();
    let mut best: Option<GridOutcome> = None;
    let mut scores = Vec::with_capacity(values.len());
    for &value in values {
        let mut loss_curves = Vec::with_capacity(seeds.len());
        let mut metric_runs: Vec<&RunResult> = Vec::with_capacity(seeds.len());
        for _ in seeds {
            let result = results.next().expect("result count checked above");
            loss_curves.push(result.losses.clone());
            metric_runs.push(result);
        }
        let avg = try_average_curves(&loss_curves)?;
        let smoothed = smooth(&avg, window);
        let lowest = smoothed.iter().copied().fold(f64::INFINITY, f64::min);
        scores.push((value, lowest));
        let metrics = try_average_metrics_ref(&metric_runs)?;
        let better = match &best {
            None => true,
            Some(b) => {
                let b_low = b.best_curve.iter().copied().fold(f64::INFINITY, f64::min);
                lowest < b_low
            }
        };
        if better {
            best = Some(GridOutcome {
                best_value: value,
                best_curve: smoothed,
                best_metrics: metrics,
                scores: Vec::new(),
            });
        }
    }
    let mut outcome = best.expect("at least one grid point");
    outcome.scores = scores;
    Ok(outcome)
}

/// Averages validation metric series pointwise across runs (all runs must
/// have validated at the same iterations).
///
/// # Errors
///
/// [`GridError::RaggedMetrics`] / [`GridError::MisalignedMetrics`] when
/// the runs disagree on the validation points.
pub fn try_average_metrics(runs: &[RunResult]) -> Result<Vec<(u64, f64)>, GridError> {
    try_average_metrics_ref(&runs.iter().collect::<Vec<_>>())
}

fn try_average_metrics_ref(runs: &[&RunResult]) -> Result<Vec<(u64, f64)>, GridError> {
    if runs.is_empty() || runs[0].metrics.is_empty() {
        return Ok(Vec::new());
    }
    let n = runs[0].metrics.len();
    let mut out: Vec<(u64, f64)> = runs[0].metrics.iter().map(|&(i, _)| (i, 0.0)).collect();
    for run in runs {
        if run.metrics.len() != n {
            return Err(GridError::RaggedMetrics {
                expected: n,
                got: run.metrics.len(),
            });
        }
        for (slot, &(i, v)) in out.iter_mut().zip(&run.metrics) {
            if slot.0 != i {
                return Err(GridError::MisalignedMetrics {
                    expected: slot.0,
                    got: i,
                });
            }
            slot.1 += v;
        }
    }
    for slot in &mut out {
        slot.1 /= runs.len() as f64;
    }
    Ok(out)
}

/// Panicking wrapper around [`try_average_metrics`].
///
/// # Panics
///
/// Panics when the runs disagree on the validation points.
pub fn average_metrics(runs: &[RunResult]) -> Vec<(u64, f64)> {
    try_average_metrics(runs).unwrap_or_else(|e| panic!("average_metrics: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ModelTask;
    use yf_nn::Mlp;
    use yf_optim::Sgd;
    use yf_tensor::rng::Pcg32;
    use yf_tensor::Tensor;

    fn make_task(seed: u64) -> Box<dyn TrainTask> {
        let mut rng = Pcg32::seed(seed);
        let mlp = Mlp::new(&[2, 6, 2], &mut rng);
        let mut data_rng = Pcg32::seed(seed ^ 0xdead);
        Box::new(ModelTask::new(
            mlp,
            move |_| {
                let x = Tensor::randn(&[8, 2], &mut data_rng);
                let y = (0..8).map(|r| usize::from(x.at(&[r, 0]) > 0.0)).collect();
                (x, y)
            },
            |_| 0.0,
            "none",
            true,
        ))
    }

    #[test]
    fn grid_prefers_working_learning_rate() {
        // 1e-6 barely moves; 0.3 learns. The grid must pick 0.3.
        let outcome = grid_search(
            &[1e-6, 0.3],
            &[1, 2],
            20,
            &RunConfig::plain(150),
            make_task,
            |lr| Box::new(Sgd::new(lr)),
        );
        assert_eq!(outcome.best_value, 0.3);
        assert_eq!(outcome.scores.len(), 2);
        let s_tiny = outcome.scores[0].1;
        let s_good = outcome.scores[1].1;
        assert!(s_good < s_tiny, "{s_good} vs {s_tiny}");
    }

    #[test]
    fn average_curves_pointwise() {
        let avg = average_curves(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(avg, vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged curves")]
    fn ragged_curves_panic() {
        average_curves(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
