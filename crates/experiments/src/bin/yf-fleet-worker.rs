//! Fleet worker process: serves grid cells dispatched by the fleet
//! coordinator as line-delimited JSON, over stdin/stdout by default or
//! over TCP with `--transport tcp --connect <addr>`. See
//! [`yf_experiments::fleet`] for the protocol and durability contract.

use yf_experiments::fleet::worker;

fn usage() -> ! {
    eprintln!("usage: yf-fleet-worker [--transport stdio|tcp] [--connect <addr>]");
    std::process::exit(2);
}

fn main() {
    // `Command` children get SIGPIPE's default (fatal) disposition back;
    // a coordinator that dies mid-read must surface here as a write
    // error the serve loop can report, not as silent process death.
    yf_wire::sigpipe::ignore();
    let mut transport: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--transport" => transport = Some(args.next().unwrap_or_else(|| usage())),
            "--connect" => connect = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let code = match transport.as_deref() {
        None | Some("stdio") => {
            if connect.is_some() {
                eprintln!("yf-fleet-worker: --connect requires --transport tcp");
                std::process::exit(2);
            }
            worker::worker_main()
        }
        Some("tcp") => match connect {
            Some(addr) => worker::worker_tcp(&addr),
            None => {
                eprintln!("yf-fleet-worker: --transport tcp requires --connect <addr>");
                std::process::exit(2);
            }
        },
        Some(other) => {
            eprintln!("yf-fleet-worker: unknown transport {other:?}");
            std::process::exit(2);
        }
    };
    std::process::exit(code);
}
