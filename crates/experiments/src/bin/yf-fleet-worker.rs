//! Fleet worker process: serves grid cells dispatched by the fleet
//! coordinator as line-delimited JSON on stdin/stdout. See
//! [`yf_experiments::fleet`] for the protocol and durability contract.

fn main() {
    std::process::exit(yf_experiments::fleet::worker::worker_main());
}
