//! The paper's speedup protocol (Section 5.1).
//!
//! "To compare two algorithms, we record the lowest smoothed loss
//! achieved by both. Then the speedup is reported as the ratio of
//! iterations to achieve this loss."

/// First iteration (0-based) at which `curve` reaches `target` or lower,
/// if it ever does.
pub fn iters_to_reach(curve: &[f64], target: f64) -> Option<usize> {
    curve.iter().position(|&v| v <= target)
}

/// The lowest value both curves achieve (i.e. the max of the two minima).
///
/// Returns `None` if either curve is empty.
pub fn common_lowest(a: &[f64], b: &[f64]) -> Option<f64> {
    let min = |c: &[f64]| c.iter().copied().fold(f64::INFINITY, f64::min);
    if a.is_empty() || b.is_empty() {
        return None;
    }
    Some(min(a).max(min(b)))
}

/// Speedup of `candidate` over `baseline`: (iterations the baseline needs
/// to reach the common lowest loss) / (iterations the candidate needs).
/// Values above 1 mean the candidate is faster, exactly as reported in
/// the paper's Table 2.
///
/// Returns `None` if the curves are empty or either never reaches the
/// target (which cannot happen for the curve attaining the max-of-minima,
/// but guards float edge cases).
pub fn speedup_over(baseline: &[f64], candidate: &[f64]) -> Option<f64> {
    let target = common_lowest(baseline, candidate)?;
    let ib = iters_to_reach(baseline, target)?;
    let ic = iters_to_reach(candidate, target)?;
    // +1: "iterations to achieve", counting from 1, avoids 0/0 when both
    // start below the target.
    Some((ib + 1) as f64 / (ic + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric(start: f64, rate: f64, n: usize) -> Vec<f64> {
        (0..n).map(|t| start * rate.powi(t as i32)).collect()
    }

    #[test]
    fn identical_curves_give_speedup_one() {
        let c = geometric(1.0, 0.99, 500);
        assert!((speedup_over(&c, &c).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faster_decay_wins_by_rate_ratio() {
        // Curve B decays twice as fast in log domain: it reaches any
        // given level in half the iterations, so speedup ~ 2.
        let a = geometric(1.0, 0.99, 2000);
        let b = geometric(1.0, 0.99 * 0.99, 2000);
        let s = speedup_over(&a, &b).unwrap();
        assert!((s - 2.0).abs() < 0.05, "speedup {s}");
    }

    #[test]
    fn slower_candidate_reports_below_one() {
        let a = geometric(1.0, 0.98, 1000);
        let b = geometric(1.0, 0.99, 1000);
        let s = speedup_over(&a, &b).unwrap();
        assert!(s < 1.0, "speedup {s}");
    }

    #[test]
    fn common_lowest_is_max_of_minima() {
        let a = vec![3.0, 2.0, 1.0];
        let b = vec![3.0, 2.5, 2.0];
        assert_eq!(common_lowest(&a, &b), Some(2.0));
    }

    #[test]
    fn unreached_target_is_none() {
        assert_eq!(iters_to_reach(&[3.0, 2.0], 1.0), None);
        assert_eq!(common_lowest(&[], &[1.0]), None);
    }
}
