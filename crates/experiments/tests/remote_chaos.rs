//! [`RemoteTuner`] under live network failure: the acceptance tests for
//! the graceful-degradation contract.
//!
//! Three regimes, one invariant. Whether the fault schedule eventually
//! reconnects (chaos proxy), never reconnects (server drained away), or
//! reconnects to a *restarted* server resuming from snapshots, the
//! parameter trajectory a trainer walks must be bitwise identical to
//! the same tuner run in process — the shadow session is an exact twin,
//! not an approximation, so even steps served degraded keep the bits.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::Duration;
use yf_experiments::serve_client::{RemoteTuner, RemoteTunerConfig};
use yf_optim::Optimizer;
use yf_serve::{
    Authority, Backoff, ChaosProxy, ChaosSpec, ClientConfig, FilterSpec, OpenSpec, ServeConfig,
    Server,
};
use yf_tensor::rng::Pcg32;

const DIM: usize = 16;

/// Wide-open authority: the served stream is the raw tuner output, so
/// in-process YellowFin is the exact bitwise reference.
fn spec(name: &str) -> OpenSpec {
    let mut spec = OpenSpec {
        session: name.to_string(),
        optimizer: "yellowfin".to_string(),
        value: 1.0,
        dim: DIM,
        authority: Authority::default(),
        filter: FilterSpec::default(),
    };
    spec.authority.max_lr_step = 1e9;
    spec.authority.max_momentum_step = 1.0;
    spec.authority.lr_max = 1e9;
    spec
}

/// Deadlines and budgets tightened from their multi-second production
/// defaults so outages resolve in test time.
fn fast_cfg() -> RemoteTunerConfig {
    RemoteTunerConfig {
        client: ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(500),
            ..ClientConfig::from_env()
        },
        backoff: Backoff {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(50),
        },
        degrade_after: Duration::from_millis(600),
        resync_limit: 4096,
        probe_cap: 4,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yf-remote-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Steps both tuners over the same gradient stream, asserting bitwise
/// parameter parity at every step.
fn lockstep(
    remote: &mut RemoteTuner,
    local: &mut dyn Optimizer,
    p_remote: &mut [f32],
    p_local: &mut [f32],
    rng: &mut Pcg32,
    steps: std::ops::Range<usize>,
    context: &str,
) {
    for step in steps {
        let grads: Vec<f32> = (0..DIM).map(|_| rng.uniform() - 0.5).collect();
        remote.step(p_remote, &grads);
        local.step(p_local, &grads);
        for (i, (a, b)) in p_remote.iter().zip(p_local.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{context}: step {step}, param {i}"
            );
        }
    }
}

#[test]
fn eventually_reconnecting_chaos_keeps_the_trajectory_bitwise() {
    // Dropped connection, blackholed replies, duplicated frames — every
    // fault clears on reconnect, the server stays alive throughout, so
    // every verdict is ultimately served (or replayed) by the server:
    // zero degraded steps and zero flipped bits.
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut chaos = ChaosSpec::parse("drop:6,blackhole:14:s2c,duplicate:20").unwrap();
    chaos.delay = Duration::from_millis(20);
    let proxy = ChaosProxy::start(server.local_addr(), chaos).unwrap();

    let mut remote =
        RemoteTuner::connect_with(proxy.local_addr(), spec("chaos-reconnect"), fast_cfg()).unwrap();
    let mut local = yf_serve::registry::build_optimizer("yellowfin", 1.0).unwrap();
    let mut rng = Pcg32::seed(71);
    let mut p_remote = vec![0.5f32; DIM];
    let mut p_local = p_remote.clone();
    lockstep(
        &mut remote,
        &mut *local,
        &mut p_remote,
        &mut p_local,
        &mut rng,
        0..30,
        "reconnecting chaos",
    );
    assert_eq!(
        remote.degraded_steps(),
        0,
        "an eventually-reconnecting schedule never needs the shadow"
    );
    assert!(!remote.degraded());
    let _ = remote.detach().unwrap();
}

#[test]
fn a_permanently_unreachable_server_degrades_and_training_completes() {
    // The server goes away for good mid-run. Training must complete on
    // the shadow tuner — flagged degraded, never hanging — and the
    // shadow being an exact twin, the bits still match the reference.
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut remote =
        RemoteTuner::connect_with(server.local_addr(), spec("chaos-gone"), fast_cfg()).unwrap();
    let mut local = yf_serve::registry::build_optimizer("yellowfin", 1.0).unwrap();
    let mut rng = Pcg32::seed(72);
    let mut p_remote = vec![0.5f32; DIM];
    let mut p_local = p_remote.clone();

    lockstep(
        &mut remote,
        &mut *local,
        &mut p_remote,
        &mut p_local,
        &mut rng,
        0..10,
        "pre-outage",
    );
    assert_eq!(remote.degraded_steps(), 0);

    // Drain: sessions unload, the listener closes, reconnects refuse.
    server.drain();
    server.wait();

    lockstep(
        &mut remote,
        &mut *local,
        &mut p_remote,
        &mut p_local,
        &mut rng,
        10..25,
        "post-outage",
    );
    assert!(
        remote.degraded(),
        "steps served by the shadow must be flagged"
    );
    assert!(
        remote.degraded_steps() >= 10,
        "most post-outage steps are shadow-served, got {}",
        remote.degraded_steps()
    );
    assert_eq!(remote.next_step(), 25, "training ran to completion");
    // No live connection to detach through.
    assert!(remote.detach().is_err());
}

#[test]
fn a_restarted_server_is_rejoined_by_probe_and_replay_bitwise() {
    // Full lifecycle: live → outage (degraded on the shadow, probing at
    // widening step gaps) → a fresh server process resumes the session
    // from snapshots → a probe finds it, replays the buffered
    // measurements, and the link goes live again. Bits never flip.
    let dir = temp_dir("restart");
    let server1 = Server::start(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    // Reserve the restart port up front so both addresses are known to
    // the tuner; the reserved listener never answers, so probes against
    // it stay transient failures until the real server takes the port.
    let reserve = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr2 = reserve.local_addr().unwrap();
    let addrs: Vec<SocketAddr> = vec![server1.local_addr(), addr2];

    let mut remote =
        RemoteTuner::connect_with(&addrs[..], spec("chaos-restart"), fast_cfg()).unwrap();
    let mut local = yf_serve::registry::build_optimizer("yellowfin", 1.0).unwrap();
    let mut rng = Pcg32::seed(73);
    let mut p_remote = vec![0.5f32; DIM];
    let mut p_local = p_remote.clone();

    lockstep(
        &mut remote,
        &mut *local,
        &mut p_remote,
        &mut p_local,
        &mut rng,
        0..8,
        "pre-outage",
    );

    // Drain seals every session snapshot, then the server goes away.
    server1.drain();
    server1.wait();

    // Degraded stretch: probes at steps 9 and 11 fail (the reserved
    // port accepts but never replies), widening the probe gap.
    lockstep(
        &mut remote,
        &mut *local,
        &mut p_remote,
        &mut p_local,
        &mut rng,
        8..13,
        "degraded",
    );
    assert!(remote.degraded());
    let degraded_so_far = remote.degraded_steps();
    assert!(degraded_so_far >= 4, "got {degraded_so_far}");

    // The replacement server takes the reserved port over the same
    // snapshot directory.
    drop(reserve);
    let server2 = Server::start(ServeConfig {
        addr: addr2.to_string(),
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();

    // The next scheduled probe resyncs: buffered measurements replay in
    // order and the link goes live; later steps are server-served.
    lockstep(
        &mut remote,
        &mut *local,
        &mut p_remote,
        &mut p_local,
        &mut rng,
        13..30,
        "post-restart",
    );
    assert!(
        !remote.degraded(),
        "the tuner must be live again after the restart"
    );
    assert!(
        remote.degraded_steps() > degraded_so_far.saturating_sub(1) && remote.degraded_steps() < 22,
        "degradation must end once the probe resyncs, got {}",
        remote.degraded_steps()
    );
    let _ = remote.detach().unwrap();
    drop(server2);
    let _ = std::fs::remove_dir_all(&dir);
}
