//! Fleet fault-injection matrix: every recovery path must converge to a
//! merged [`GridOutcome`] bitwise identical to the uninterrupted
//! in-process sweep.
//!
//! Each test arms one deterministic fault (`YF_FAULT` in the spawned
//! workers, via [`FleetConfig::fault_spec`]), lets the coordinator
//! recover, and compares the outcome against [`grid_search`] run in this
//! process with the same registry builders.

use std::path::{Path, PathBuf};
use std::time::Duration;
use yf_experiments::fleet::{
    self, codec, fsio, journal::Journal, registry, run_fleet, FleetConfig, FleetError, FleetSpec,
    WorkerTransport,
};
use yf_experiments::grid::{grid_search, GridOutcome};
use yf_experiments::trainer::RunConfig;

const VALUES: [f32; 2] = [0.05, 0.1];
const SEEDS: [u64; 2] = [1, 2];
const ITERS: usize = 60;
const EVAL_EVERY: usize = 20;
const WINDOW: usize = 5;

fn spec() -> FleetSpec {
    FleetSpec {
        task: "toy-mlp".to_string(),
        opt: "momentum".to_string(),
        values: VALUES.to_vec(),
        seeds: SEEDS.to_vec(),
        iters: ITERS,
        eval_every: EVAL_EVERY,
        window: WINDOW,
    }
}

fn config(fault: Option<&str>) -> FleetConfig {
    FleetConfig {
        workers: 2,
        transport: WorkerTransport::Stdio,
        max_attempts: 3,
        lease_timeout: Duration::from_secs(20),
        backoff_base: Duration::from_millis(5),
        checkpoint_every: 10,
        fault_spec: fault.map(str::to_string),
        chaos_spec: None,
    }
}

fn worker_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_yf-fleet-worker"))
}

fn sweep_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yf-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The ground truth: the same grid swept uninterrupted in this process.
fn baseline() -> GridOutcome {
    let cfg = RunConfig::plain(ITERS).with_eval(EVAL_EVERY);
    let make_task = registry::task_builder("toy-mlp").unwrap();
    let make_opt = registry::opt_builder("momentum").unwrap();
    grid_search(
        &VALUES,
        &SEEDS,
        WINDOW,
        &cfg,
        |seed| make_task(seed),
        |value| make_opt(value),
    )
}

#[test]
fn fault_free_fleet_matches_in_process_sweep() {
    let dir = sweep_dir("clean");
    let report = run_fleet(&spec(), &config(None), &dir, worker_bin()).unwrap();
    assert_eq!(
        report.outcome,
        baseline(),
        "fleet outcome must be bitwise identical"
    );
    assert_eq!(report.executed_cells, 4);
    assert_eq!(report.retries, 0);
    assert_eq!(report.recovered_results, 0);
    // Every cell ended durably done in the journal.
    let replay = Journal::open(&dir).replay().unwrap();
    assert_eq!(replay.cells.len(), 4);
    assert!(replay.cells.iter().all(|c| c.done));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_worker_mid_cell_recovers_bitwise() {
    // SIGKILL the worker at step 25 of cell 1 (attempt 0 only): the
    // retry must resume from the step-20 checkpoint and the merged
    // outcome must not show a single flipped bit.
    let dir = sweep_dir("kill");
    let report = run_fleet(&spec(), &config(Some("kill:1:25")), &dir, worker_bin()).unwrap();
    assert_eq!(report.outcome, baseline());
    assert!(report.retries >= 1, "the killed cell must be re-dispatched");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_worker_is_retried_to_the_same_bits() {
    let dir = sweep_dir("panic");
    let report = run_fleet(&spec(), &config(Some("panic:3:15")), &dir, worker_bin()).unwrap();
    assert_eq!(report.outcome, baseline());
    assert!(report.retries >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_write_is_rejected_and_recovered() {
    // The worker writes the step-20 checkpoint of cell 0 truncated and
    // unsealed, then dies cold. The retry must reject the torn file,
    // restart the cell from scratch, and still merge identically.
    let dir = sweep_dir("torn");
    let report = run_fleet(&spec(), &config(Some("torn:0:20")), &dir, worker_bin()).unwrap();
    assert_eq!(report.outcome, baseline());
    assert!(report.retries >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_worker_is_reaped_by_the_lease_timeout() {
    // The worker stops making progress at step 30 of cell 2; no
    // heartbeats arrive, the lease expires, the coordinator SIGKILLs the
    // worker and re-dispatches the cell.
    let dir = sweep_dir("hang");
    let cfg = FleetConfig {
        lease_timeout: Duration::from_millis(900),
        ..config(Some("hang:2:30"))
    };
    let report = run_fleet(&spec(), &cfg, &dir, worker_bin()).unwrap();
    assert_eq!(report.outcome, baseline());
    assert!(report.retries >= 1, "the hung cell must be re-dispatched");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_attempts_fail_the_sweep_with_a_typed_error() {
    // Arm the fault on every attempt the config allows: the cell can
    // never finish and the sweep must surface JobFailed (leaving the
    // journal behind for a later resume).
    let dir = sweep_dir("exhaust");
    let cfg = FleetConfig {
        max_attempts: 1,
        ..config(Some("panic:0:5"))
    };
    let err = run_fleet(&spec(), &cfg, &dir, worker_bin()).unwrap_err();
    match err {
        FleetError::JobFailed { cell, attempts, .. } => {
            assert_eq!(cell, 0);
            assert_eq!(attempts, 1);
        }
        other => panic!("expected JobFailed, got {other}"),
    }
    assert!(Journal::open(&dir).path().exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coordinator_restart_resumes_without_rerunning_done_cells() {
    // Phase 1: a single worker sweeps cells in order and is SIGKILLed at
    // step 25 of cell 2 with retries disabled — the sweep fails with
    // cells 0 and 1 durably done and cell 2's step-20 checkpoint sealed
    // on disk.
    let dir = sweep_dir("restart");
    let crash_cfg = FleetConfig {
        workers: 1,
        max_attempts: 1,
        ..config(Some("kill:2:25"))
    };
    let err = run_fleet(&spec(), &crash_cfg, &dir, worker_bin()).unwrap_err();
    assert!(
        matches!(err, FleetError::JobFailed { cell: 2, .. }),
        "{err}"
    );
    let replay = Journal::open(&dir).replay().unwrap();
    assert!(replay.cells[0].done && replay.cells[1].done);
    assert!(!replay.cells[2].done && !replay.cells[3].done);
    let ckpt_text = fsio::read_sealed(&fleet::checkpoint_path(&dir, 2)).unwrap();
    let ckpt = codec::decode_checkpoint(&ckpt_text).unwrap();
    assert_eq!(ckpt.step, 20, "the step-20 checkpoint survived the SIGKILL");

    // Phase 2: a fresh coordinator against the same directory resumes
    // from the journal — done cells are recovered, not re-run; cell 2
    // resumes from its checkpoint; the merge is still bit-identical.
    let report = run_fleet(&spec(), &config(None), &dir, worker_bin()).unwrap();
    assert_eq!(report.recovered_results, 2, "done cells must not re-run");
    assert_eq!(report.executed_cells, 2, "only cells 2 and 3 run again");
    assert_eq!(report.outcome, baseline());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_transport_sweeps_to_the_same_bits_as_stdio() {
    // The acceptance bar for the network transport: the same grid over
    // `--transport tcp` merges to a GridOutcome bitwise identical to the
    // stdio path (which the clean test above pins to the in-process
    // baseline).
    let dir = sweep_dir("tcp");
    let cfg = FleetConfig {
        transport: WorkerTransport::Tcp,
        ..config(None)
    };
    let report = run_fleet(&spec(), &cfg, &dir, worker_bin()).unwrap();
    assert_eq!(
        report.outcome,
        baseline(),
        "tcp fleet outcome must be bitwise identical to stdio/in-process"
    );
    assert_eq!(report.executed_cells, 4);
    assert_eq!(report.retries, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_transport_recovers_a_sigkilled_worker_bitwise() {
    // Same fault as the stdio kill test, but the dead worker takes its
    // TCP connection with it: the reader thread sees EOF, the slot is
    // relaunched (new socket), and the retry resumes from the sealed
    // checkpoint to the same bits.
    let dir = sweep_dir("tcp-kill");
    let cfg = FleetConfig {
        transport: WorkerTransport::Tcp,
        ..config(Some("kill:1:25"))
    };
    let report = run_fleet(&spec(), &cfg, &dir, worker_bin()).unwrap();
    assert_eq!(report.outcome, baseline());
    assert!(report.retries >= 1, "the killed cell must be re-dispatched");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_transport_survives_a_chaos_dropped_connection_bitwise() {
    // A chaos proxy sits between the worker and the coordinator and
    // drops the connection after the 8th worker→coordinator frame
    // (mid-sweep, between heartbeats). The coordinator's reader thread
    // sees EOF, the slot is replaced, and the replacement worker dials
    // the proxy again (the drop fault is one-shot); the retry resumes
    // from the sealed checkpoint to the same bits. One worker keeps the
    // chaos frame schedule deterministic.
    let dir = sweep_dir("tcp-chaos-drop");
    let cfg = FleetConfig {
        workers: 1,
        transport: WorkerTransport::Tcp,
        chaos_spec: Some("drop:8".to_string()),
        ..config(None)
    };
    let report = run_fleet(&spec(), &cfg, &dir, worker_bin()).unwrap();
    assert_eq!(
        report.outcome,
        baseline(),
        "chaos-dropped tcp fleet must still merge bitwise identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_transport_absorbs_chaos_duplicates_and_delays_bitwise() {
    // Mixed chaos: the 7th worker→coordinator frame (a `done`) is
    // delivered twice, and the 5th coordinator→worker frame (a `run`
    // dispatch) is delayed in flight. The coordinator's done-guard makes
    // the duplicate a no-op and the delay is pure latency: no retries,
    // same bits.
    let dir = sweep_dir("tcp-chaos-dup");
    let cfg = FleetConfig {
        workers: 1,
        transport: WorkerTransport::Tcp,
        chaos_spec: Some("duplicate:7,delay:5:s2c".to_string()),
        ..config(None)
    };
    let report = run_fleet(&spec(), &cfg, &dir, worker_bin()).unwrap();
    assert_eq!(
        report.outcome,
        baseline(),
        "duplicated/delayed tcp fleet must still merge bitwise identical"
    );
    assert_eq!(
        report.retries, 0,
        "duplicates and delays must not burn attempts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_rejects_grids_that_do_not_match_the_journal() {
    let dir = sweep_dir("mismatch");
    run_fleet(&spec(), &config(None), &dir, worker_bin()).unwrap();
    let mut changed = spec();
    changed.values = vec![0.05, 0.2];
    let err = run_fleet(&changed, &config(None), &dir, worker_bin()).unwrap_err();
    assert!(matches!(err, FleetError::SpecMismatch(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
