//! Encoder-decoder LSTM for the translation task of Table 1.
//!
//! The paper's Table 1 uses the convolutional seq-to-seq model of Gehring
//! et al. on IWSLT'14 German-English; this reproduction substitutes an
//! LSTM encoder-decoder on a synthetic bijective translation task (see
//! `yf-data`). What Table 1 actually measures — divergence of a
//! high-momentum optimizer without clipping, stabilization with a manual
//! threshold, and YellowFin's adaptive clipping doing better — depends on
//! the exploding-gradient dynamics of a deep recurrent objective, which
//! this model reproduces (with an optional inflated recurrent scale).

use crate::linear::{Embedding, Linear};
use crate::lstm::Lstm;
use crate::model::{Param, ParamNodes, SupervisedModel};
use yf_autograd::{Graph, NodeId};
use yf_tensor::rng::Pcg32;

/// A batch of aligned source/target sequences (`[batch * time]` each,
/// row-major per sequence like [`crate::LmBatch`]).
#[derive(Debug, Clone)]
pub struct SeqBatch {
    /// Source token ids.
    pub src: Vec<usize>,
    /// Decoder input ids (`<bos>` + target prefix).
    pub tgt_in: Vec<usize>,
    /// Decoder targets (target + `<eos>`).
    pub tgt_out: Vec<usize>,
    /// Number of sequence pairs.
    pub batch: usize,
    /// Source length.
    pub src_time: usize,
    /// Target length.
    pub tgt_time: usize,
}

impl SeqBatch {
    /// Validates and constructs a batch.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn new(
        src: Vec<usize>,
        tgt_in: Vec<usize>,
        tgt_out: Vec<usize>,
        batch: usize,
        src_time: usize,
        tgt_time: usize,
    ) -> Self {
        assert_eq!(src.len(), batch * src_time, "seq batch: src length");
        assert_eq!(tgt_in.len(), batch * tgt_time, "seq batch: tgt_in length");
        assert_eq!(tgt_out.len(), batch * tgt_time, "seq batch: tgt_out length");
        SeqBatch {
            src,
            tgt_in,
            tgt_out,
            batch,
            src_time,
            tgt_time,
        }
    }
}

/// Architecture of a [`Seq2Seq`].
#[derive(Debug, Clone)]
pub struct Seq2SeqConfig {
    /// Shared source/target vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub embed: usize,
    /// Hidden width of encoder and decoder.
    pub hidden: usize,
    /// Stacked layers on each side.
    pub layers: usize,
    /// Recurrent-weight scale (> 1 induces exploding gradients).
    pub recurrent_scale: f32,
}

impl Seq2SeqConfig {
    /// The small configuration used by the Table 1 regenerator.
    pub fn table1_like(vocab: usize) -> Self {
        Seq2SeqConfig {
            vocab,
            embed: 12,
            hidden: 16,
            layers: 1,
            recurrent_scale: 1.15,
        }
    }
}

/// LSTM encoder-decoder with teacher forcing and greedy decoding.
#[derive(Debug, Clone)]
pub struct Seq2Seq {
    src_embed: Embedding,
    tgt_embed: Embedding,
    encoder: Lstm,
    decoder: Lstm,
    out: Linear,
    cfg: Seq2SeqConfig,
}

impl Seq2Seq {
    /// Builds the model.
    pub fn new(cfg: Seq2SeqConfig, rng: &mut Pcg32) -> Self {
        Seq2Seq {
            src_embed: Embedding::new("s2s.src_embed", cfg.vocab, cfg.embed, rng),
            tgt_embed: Embedding::new("s2s.tgt_embed", cfg.vocab, cfg.embed, rng),
            encoder: Lstm::with_recurrent_scale(
                "s2s.enc",
                cfg.embed,
                cfg.hidden,
                cfg.layers,
                cfg.recurrent_scale,
                rng,
            ),
            decoder: Lstm::with_recurrent_scale(
                "s2s.dec",
                cfg.embed,
                cfg.hidden,
                cfg.layers,
                cfg.recurrent_scale,
                rng,
            ),
            out: Linear::new("s2s.out", cfg.hidden, cfg.vocab, true, rng),
            cfg,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &Seq2SeqConfig {
        &self.cfg
    }

    fn embed_steps(
        g: &mut Graph,
        table: NodeId,
        ids: &[usize],
        batch: usize,
        time: usize,
    ) -> Vec<NodeId> {
        (0..time)
            .map(|step| {
                let step_ids: Vec<usize> = (0..batch).map(|r| ids[r * time + step]).collect();
                g.embedding(table, &step_ids)
            })
            .collect()
    }

    /// Builds `[tgt_time * batch, vocab]` logits (timestep-major rows).
    pub fn logits(&self, g: &mut Graph, nodes: &mut ParamNodes, batch: &SeqBatch) -> NodeId {
        let src_w = nodes.bind(g, &self.src_embed.w);
        let tgt_w = nodes.bind(g, &self.tgt_embed.w);
        let src_xs = Self::embed_steps(g, src_w, &batch.src, batch.batch, batch.src_time);
        let (_, enc_state) = self
            .encoder
            .forward_seq(g, nodes, &src_xs, batch.batch, None);
        let tgt_xs = Self::embed_steps(g, tgt_w, &batch.tgt_in, batch.batch, batch.tgt_time);
        let (outs, _) = self
            .decoder
            .forward_seq(g, nodes, &tgt_xs, batch.batch, Some(enc_state));
        let h_cat = crate::models_lm::concat_rows(g, &outs);
        self.out.forward(g, nodes, h_cat)
    }

    /// Targets reordered to the logits' timestep-major row order.
    pub fn reorder_targets(&self, batch: &SeqBatch) -> Vec<usize> {
        let (b, t) = (batch.batch, batch.tgt_time);
        let mut out = Vec::with_capacity(b * t);
        for step in 0..t {
            for r in 0..b {
                out.push(batch.tgt_out[r * t + step]);
            }
        }
        out
    }

    /// Greedy decode of a single source sequence: feeds `bos` and emits
    /// tokens until `max_len`, returning the produced ids.
    pub fn greedy_decode(&self, src: &[usize], bos: usize, max_len: usize) -> Vec<usize> {
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let src_w = nodes.bind(&mut g, &self.src_embed.w);
        let tgt_w = nodes.bind(&mut g, &self.tgt_embed.w);
        let src_xs = Self::embed_steps(&mut g, src_w, src, 1, src.len());
        let (_, mut state) = self
            .encoder
            .forward_seq(&mut g, &mut nodes, &src_xs, 1, None);
        let bound: Vec<_> = self
            .decoder
            .cells
            .iter()
            .map(|c| c.bind(&mut g, &mut nodes))
            .collect();
        let mut token = bos;
        let mut produced = Vec::new();
        for _ in 0..max_len {
            let x = g.embedding(tgt_w, &[token]);
            let mut input = x;
            for (l, cell) in self.decoder.cells.iter().enumerate() {
                let next = cell.step(&mut g, bound[l], input, state[l]);
                input = next.h;
                state[l] = next;
            }
            let mut tmp = ParamNodes::new();
            let logits = self.out.forward(&mut g, &mut tmp, input);
            token = g.value(logits).argmax();
            produced.push(token);
        }
        produced
    }
}

impl SupervisedModel for Seq2Seq {
    type Batch = SeqBatch;

    fn loss(&self, g: &mut Graph, batch: &Self::Batch) -> (NodeId, ParamNodes) {
        let mut nodes = ParamNodes::new();
        let logits = self.logits(g, &mut nodes, batch);
        let targets = self.reorder_targets(batch);
        (g.softmax_cross_entropy(logits, &targets), nodes)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.src_embed.w, &self.tgt_embed.w];
        v.extend(self.encoder.params());
        v.extend(self.decoder.params());
        v.extend(self.out.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.src_embed.w, &mut self.tgt_embed.w];
        v.extend(self.encoder.params_mut());
        v.extend(self.decoder.params_mut());
        v.extend(self.out.params_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{flat_dim, flat_params, load_flat, loss_and_grad};

    fn copy_task_batch(vocab: usize, b: usize, t: usize, seed: u64) -> SeqBatch {
        // Target = source (copy task), bos = 0.
        let mut rng = Pcg32::seed(seed);
        let src: Vec<usize> = (0..b * t)
            .map(|_| 1 + rng.below(vocab as u32 - 1) as usize)
            .collect();
        let mut tgt_in = Vec::with_capacity(b * t);
        let mut tgt_out = Vec::with_capacity(b * t);
        for r in 0..b {
            tgt_in.push(0);
            tgt_in.extend_from_slice(&src[r * t..r * t + t - 1]);
            tgt_out.extend_from_slice(&src[r * t..(r + 1) * t]);
        }
        SeqBatch::new(src, tgt_in, tgt_out, b, t, t)
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = Pcg32::seed(50);
        let model = Seq2Seq::new(
            Seq2SeqConfig {
                vocab: 8,
                embed: 6,
                hidden: 8,
                layers: 1,
                recurrent_scale: 1.0,
            },
            &mut rng,
        );
        let batch = copy_task_batch(8, 3, 4, 51);
        let (loss, grads) = loss_and_grad(&model, &batch);
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(grads.len(), flat_dim(&model));
    }

    #[test]
    fn learns_the_copy_task() {
        let mut rng = Pcg32::seed(52);
        let mut model = Seq2Seq::new(
            Seq2SeqConfig {
                vocab: 6,
                embed: 8,
                hidden: 12,
                layers: 1,
                recurrent_scale: 1.0,
            },
            &mut rng,
        );
        let batch = copy_task_batch(6, 8, 3, 53);
        let (initial, _) = loss_and_grad(&model, &batch);
        for _ in 0..150 {
            let (_, grads) = loss_and_grad(&model, &batch);
            let mut flat = flat_params(&model);
            for (p, g) in flat.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
            load_flat(&mut model, &flat);
        }
        let (final_loss, _) = loss_and_grad(&model, &batch);
        assert!(final_loss < initial * 0.5, "{final_loss} vs {initial}");
    }

    #[test]
    fn greedy_decode_produces_tokens_in_vocab() {
        let mut rng = Pcg32::seed(54);
        let model = Seq2Seq::new(Seq2SeqConfig::table1_like(10), &mut rng);
        let out = model.greedy_decode(&[1, 2, 3], 0, 5);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&t| t < 10));
    }

    #[test]
    #[should_panic(expected = "src length")]
    fn bad_batch_panics() {
        SeqBatch::new(vec![0; 5], vec![0; 6], vec![0; 6], 2, 3, 3);
    }
}
