//! LSTM cells and stacks.

use crate::model::{Param, ParamNodes};
use yf_autograd::{Graph, NodeId};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

/// Hidden and cell node pair for one LSTM layer at one timestep.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden state `[B, H]`.
    pub h: NodeId,
    /// Cell state `[B, H]`.
    pub c: NodeId,
}

/// A single LSTM cell with fused gate weights.
///
/// Gate layout along the `4H` axis is `[input, forget, candidate,
/// output]`. `recurrent_scale > 1` deliberately inflates the recurrent
/// weights — the knob used to induce the exploding-gradient behaviour of
/// the paper's Figure 6.
#[derive(Debug, Clone)]
pub struct LstmCell {
    /// Input-to-gates weight `[I, 4H]`.
    pub w_ih: Param,
    /// Hidden-to-gates weight `[H, 4H]`.
    pub w_hh: Param,
    /// Gate bias `[4H]` (forget-gate slice initialized to 1).
    pub b: Param,
    hidden: usize,
}

impl LstmCell {
    /// Creates a cell with Xavier weights and forget-gate bias 1.
    pub fn new(name: &str, input: usize, hidden: usize, rng: &mut Pcg32) -> Self {
        Self::with_recurrent_scale(name, input, hidden, 1.0, rng)
    }

    /// Creates a cell whose recurrent weight is scaled by
    /// `recurrent_scale` after initialization (used to construct the
    /// exploding-gradient variant of Figure 6).
    pub fn with_recurrent_scale(
        name: &str,
        input: usize,
        hidden: usize,
        recurrent_scale: f32,
        rng: &mut Pcg32,
    ) -> Self {
        let w_ih = Tensor::xavier(&[input, 4 * hidden], input, hidden, rng);
        let mut w_hh = Tensor::xavier(&[hidden, 4 * hidden], hidden, hidden, rng);
        w_hh.scale_in_place(recurrent_scale);
        let mut b = Tensor::zeros(&[4 * hidden]);
        for i in hidden..2 * hidden {
            b.data_mut()[i] = 1.0; // forget-gate bias: remember by default
        }
        LstmCell {
            w_ih: Param::new(format!("{name}.w_ih"), w_ih),
            w_hh: Param::new(format!("{name}.w_hh"), w_hh),
            b: Param::new(format!("{name}.b"), b),
            hidden,
        }
    }

    /// Hidden width `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Binds this cell's parameters once per graph; the returned ids are
    /// then reused across all timesteps.
    pub fn bind(&self, g: &mut Graph, nodes: &mut ParamNodes) -> (NodeId, NodeId, NodeId) {
        (
            nodes.bind(g, &self.w_ih),
            nodes.bind(g, &self.w_hh),
            nodes.bind(g, &self.b),
        )
    }

    /// One timestep: `x [B, I]`, previous state -> next state.
    pub fn step(
        &self,
        g: &mut Graph,
        bound: (NodeId, NodeId, NodeId),
        x: NodeId,
        state: LstmState,
    ) -> LstmState {
        let (w_ih, w_hh, b) = bound;
        let hsz = self.hidden;
        let xi = g.matmul(x, w_ih);
        let hh = g.matmul(state.h, w_hh);
        let pre = g.add(xi, hh);
        let gates = g.add_bias(pre, b);
        let i_pre = g.slice_cols(gates, 0, hsz);
        let f_pre = g.slice_cols(gates, hsz, hsz);
        let g_pre = g.slice_cols(gates, 2 * hsz, hsz);
        let o_pre = g.slice_cols(gates, 3 * hsz, hsz);
        let i = g.sigmoid(i_pre);
        let f = g.sigmoid(f_pre);
        let cand = g.tanh(g_pre);
        let o = g.sigmoid(o_pre);
        let fc = g.mul(f, state.c);
        let ic = g.mul(i, cand);
        let c = g.add(fc, ic);
        let tc = g.tanh(c);
        let h = g.mul(o, tc);
        LstmState { h, c }
    }

    /// Zero initial state for batch size `b`.
    pub fn zero_state(&self, g: &mut Graph, b: usize) -> LstmState {
        LstmState {
            h: g.constant(Tensor::zeros(&[b, self.hidden])),
            c: g.constant(Tensor::zeros(&[b, self.hidden])),
        }
    }

    /// Parameters in binding order.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w_ih, &self.w_hh, &self.b]
    }

    /// Mutable parameters in binding order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.b]
    }
}

/// A stack of LSTM layers run over a sequence.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// The layers, bottom first.
    pub cells: Vec<LstmCell>,
}

impl Lstm {
    /// Builds `layers` stacked cells: `input -> hidden -> ... -> hidden`.
    pub fn new(name: &str, input: usize, hidden: usize, layers: usize, rng: &mut Pcg32) -> Self {
        Self::with_recurrent_scale(name, input, hidden, layers, 1.0, rng)
    }

    /// Stacked cells with a recurrent-weight scale (cf.
    /// [`LstmCell::with_recurrent_scale`]).
    pub fn with_recurrent_scale(
        name: &str,
        input: usize,
        hidden: usize,
        layers: usize,
        recurrent_scale: f32,
        rng: &mut Pcg32,
    ) -> Self {
        assert!(layers > 0, "lstm: needs at least one layer");
        let cells = (0..layers)
            .map(|l| {
                let in_dim = if l == 0 { input } else { hidden };
                LstmCell::with_recurrent_scale(
                    &format!("{name}.l{l}"),
                    in_dim,
                    hidden,
                    recurrent_scale,
                    rng,
                )
            })
            .collect();
        Lstm { cells }
    }

    /// Runs the stack over `xs` (one `[B, I]` node per timestep),
    /// returning the top layer's hidden node at every timestep and the
    /// final states of all layers.
    pub fn forward_seq(
        &self,
        g: &mut Graph,
        nodes: &mut ParamNodes,
        xs: &[NodeId],
        batch: usize,
        init: Option<Vec<LstmState>>,
    ) -> (Vec<NodeId>, Vec<LstmState>) {
        let bound: Vec<_> = self.cells.iter().map(|c| c.bind(g, nodes)).collect();
        let mut states: Vec<LstmState> = match init {
            Some(s) => {
                assert_eq!(s.len(), self.cells.len(), "lstm: init state count");
                s
            }
            None => self.cells.iter().map(|c| c.zero_state(g, batch)).collect(),
        };
        let mut outputs = Vec::with_capacity(xs.len());
        for &x in xs {
            let mut input = x;
            for (l, cell) in self.cells.iter().enumerate() {
                let next = cell.step(g, bound[l], input, states[l]);
                input = next.h;
                states[l] = next;
            }
            outputs.push(input);
        }
        (outputs, states)
    }

    /// Parameters of all cells, in binding order.
    pub fn params(&self) -> Vec<&Param> {
        self.cells.iter().flat_map(|c| c.params()).collect()
    }

    /// Mutable parameters of all cells, in binding order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.cells.iter_mut().flat_map(|c| c.params_mut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_shapes() {
        let mut rng = Pcg32::seed(7);
        let cell = LstmCell::new("c", 3, 5, &mut rng);
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let bound = cell.bind(&mut g, &mut nodes);
        let x = g.constant(Tensor::ones(&[2, 3]));
        let s0 = cell.zero_state(&mut g, 2);
        let s1 = cell.step(&mut g, bound, x, s0);
        assert_eq!(g.value(s1.h).shape(), &[2, 5]);
        assert_eq!(g.value(s1.c).shape(), &[2, 5]);
        assert_eq!(nodes.ids().len(), 3);
    }

    #[test]
    fn hidden_values_bounded_by_tanh() {
        let mut rng = Pcg32::seed(8);
        let cell = LstmCell::new("c", 2, 4, &mut rng);
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let bound = cell.bind(&mut g, &mut nodes);
        let x = g.constant(Tensor::full(&[1, 2], 100.0));
        let mut s = cell.zero_state(&mut g, 1);
        for _ in 0..5 {
            s = cell.step(&mut g, bound, x, s);
        }
        assert!(g.value(s.h).data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn stack_runs_sequence_and_params_count() {
        let mut rng = Pcg32::seed(9);
        let lstm = Lstm::new("l", 4, 6, 2, &mut rng);
        assert_eq!(lstm.params().len(), 6);
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let xs: Vec<NodeId> = (0..3).map(|_| g.constant(Tensor::ones(&[2, 4]))).collect();
        let (outs, finals) = lstm.forward_seq(&mut g, &mut nodes, &xs, 2, None);
        assert_eq!(outs.len(), 3);
        assert_eq!(finals.len(), 2);
        assert_eq!(g.value(outs[2]).shape(), &[2, 6]);
        // 2 cells x 3 params bound exactly once despite 3 timesteps.
        assert_eq!(nodes.ids().len(), 6);
    }

    #[test]
    fn forget_bias_is_one() {
        let mut rng = Pcg32::seed(10);
        let cell = LstmCell::new("c", 2, 3, &mut rng);
        let b = cell.b.value.data();
        assert_eq!(&b[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&b[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn recurrent_scale_amplifies_weights() {
        let mut rng_a = Pcg32::seed(11);
        let mut rng_b = Pcg32::seed(11);
        let base = LstmCell::new("a", 2, 3, &mut rng_a);
        let hot = LstmCell::with_recurrent_scale("b", 2, 3, 2.0, &mut rng_b);
        let n_base = base.w_hh.value.norm();
        let n_hot = hot.w_hh.value.norm();
        assert!((n_hot / n_base - 2.0).abs() < 1e-5);
    }
}
