//! Neural-network layers and the paper's model zoo.
//!
//! Built on [`yf_autograd`]: layers bind their parameters onto a fresh
//! [`Graph`](yf_autograd::Graph) every step (define-by-run) and models
//! expose a uniform [`SupervisedModel`] interface — a batch type, a loss
//! builder, and an ordered parameter list — which the optimizers consume
//! through flat vectors ([`flat_params`]/[`load_flat`]/[`loss_and_grad`]).
//!
//! The zoo covers every architecture family in the paper's Table 3 at
//! reduced scale: CIFAR-style ResNets (basic and bottleneck blocks, plus
//! the grouped-convolution ResNeXt variant of Appendix J.4), single- and
//! multi-layer LSTM language models (char- and word-level, with optional
//! tied input/output embeddings), an encoder-decoder LSTM for the
//! translation task of Table 1, and a plain MLP for quickstarts.

mod conv_layers;
mod gru;
mod linear;
mod lstm;
mod mlp;
mod model;
mod models_lm;
mod resnet;
mod seq2seq;

pub use conv_layers::{BatchNorm2d, Conv2dLayer};
pub use gru::{Gru, GruCell};
pub use linear::{Embedding, Linear};
pub use lstm::{Lstm, LstmCell, LstmState};
pub use mlp::Mlp;
pub use model::{
    collect_grads, flat_dim, flat_params, load_flat, loss_and_grad, param_groups, Param,
    ParamNodes, SupervisedModel,
};
pub use models_lm::{LmBatch, LstmLm, LstmLmConfig};
pub use resnet::{BlockKind, ResNet, ResNetConfig};
pub use seq2seq::{Seq2Seq, Seq2SeqConfig, SeqBatch};
