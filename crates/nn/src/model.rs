//! Parameter bookkeeping and the model/optimizer bridge.

use yf_autograd::{Graph, NodeId};
use yf_tensor::Tensor;

/// A named, trainable tensor owned by a layer.
#[derive(Debug, Clone)]
pub struct Param {
    /// Diagnostic name (e.g. `"stage1.block0.conv1.w"`).
    pub name: String,
    /// Current value.
    pub value: Tensor,
}

impl Param {
    /// Creates a named parameter.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param {
            name: name.into(),
            value,
        }
    }
}

/// Records the tape leaf for each parameter, in binding order.
///
/// Binding order is the contract between a model's `loss` and its
/// `params()` list: layer code must bind parameters in exactly the order
/// `params()` yields them, which [`collect_grads`] then relies on to
/// flatten gradients.
#[derive(Debug, Default)]
pub struct ParamNodes {
    ids: Vec<NodeId>,
}

impl ParamNodes {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        ParamNodes::default()
    }

    /// Binds `param` as a trainable leaf on `g` and records its node.
    pub fn bind(&mut self, g: &mut Graph, param: &Param) -> NodeId {
        let id = g.leaf(param.value.clone(), true);
        self.ids.push(id);
        id
    }

    /// Records an already-bound node again (weight tying lists a shared
    /// parameter once in `params()` but may need its node in two places —
    /// do *not* call this for that case; simply reuse the returned
    /// `NodeId`. This method exists for models that assemble sub-modules
    /// whose binding was done elsewhere.)
    pub fn push_bound(&mut self, id: NodeId) {
        self.ids.push(id);
    }

    /// The recorded nodes, in binding order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }
}

/// A trainable model with a batch type and a scalar loss.
pub trait SupervisedModel {
    /// One minibatch of training data.
    type Batch;

    /// Builds the loss for `batch` on a fresh graph, returning the scalar
    /// loss node and the bound parameter nodes (in `params()` order).
    fn loss(&self, g: &mut Graph, batch: &Self::Batch) -> (NodeId, ParamNodes);

    /// The parameters in canonical (binding) order.
    fn params(&self) -> Vec<&Param>;

    /// Mutable access to the parameters, same order as [`Self::params`].
    fn params_mut(&mut self) -> Vec<&mut Param>;
}

/// Total number of scalar parameters of a model.
pub fn flat_dim<M: SupervisedModel + ?Sized>(model: &M) -> usize {
    model.params().iter().map(|p| p.value.len()).sum()
}

/// The model's flat-vector layout as named [`yf_optim::ParamGroups`]
/// (binding order), ready for per-group hyper overrides and the sharded
/// apply drivers.
pub fn param_groups<M: SupervisedModel + ?Sized>(model: &M) -> yf_optim::ParamGroups {
    yf_optim::ParamGroups::from_named(
        model
            .params()
            .iter()
            .map(|p| (p.name.as_str(), p.value.len())),
    )
}

/// Flattens all parameters into one vector (canonical order).
pub fn flat_params<M: SupervisedModel + ?Sized>(model: &M) -> Vec<f32> {
    let mut out = Vec::with_capacity(flat_dim(model));
    for p in model.params() {
        out.extend_from_slice(p.value.data());
    }
    out
}

/// Writes a flat vector back into the model's parameters.
///
/// # Panics
///
/// Panics if `flat.len()` does not match [`flat_dim`].
pub fn load_flat<M: SupervisedModel + ?Sized>(model: &mut M, flat: &[f32]) {
    assert_eq!(flat.len(), flat_dim(model), "load_flat: length mismatch");
    let mut offset = 0;
    for p in model.params_mut() {
        let n = p.value.len();
        p.value
            .data_mut()
            .copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    }
}

/// Flattens the gradients of bound parameters after `backward`, in
/// binding order; parameters that received no gradient contribute zeros.
///
/// # Panics
///
/// Panics if the number of bound nodes differs from `params().len()`.
pub fn collect_grads<M: SupervisedModel + ?Sized>(
    model: &M,
    g: &Graph,
    nodes: &ParamNodes,
) -> Vec<f32> {
    let params = model.params();
    assert_eq!(
        params.len(),
        nodes.ids().len(),
        "collect_grads: binding order broken ({} params, {} bound)",
        params.len(),
        nodes.ids().len()
    );
    let mut out = Vec::with_capacity(flat_dim(model));
    for (p, &id) in params.iter().zip(nodes.ids()) {
        match g.grad(id) {
            Some(grad) => {
                debug_assert_eq!(grad.shape(), p.value.shape(), "param {}", p.name);
                out.extend_from_slice(grad.data());
            }
            None => out.extend(std::iter::repeat_n(0.0, p.value.len())),
        }
    }
    out
}

/// Convenience: forward + backward on one batch, returning the scalar
/// loss and the flat gradient.
pub fn loss_and_grad<M: SupervisedModel>(model: &M, batch: &M::Batch) -> (f32, Vec<f32>) {
    let mut g = Graph::new();
    let (loss, nodes) = model.loss(&mut g, batch);
    let loss_val = g.value(loss).data()[0];
    g.backward(loss);
    (loss_val, collect_grads(model, &g, &nodes))
}

/// Fraction of rows of a `[B, K]` logits tensor whose argmax matches the
/// label — the accuracy metric shared by the classifier models.
pub fn argmax_accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let k = logits.shape()[1];
    let correct = labels
        .iter()
        .enumerate()
        .filter(|&(r, &y)| {
            let row = &logits.data()[r * k..(r + 1) * k];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            pred == y
        })
        .count();
    correct as f32 / labels.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Affine {
        w: Param,
        b: Param,
    }

    impl SupervisedModel for Affine {
        type Batch = (Tensor, Vec<usize>);

        fn loss(&self, g: &mut Graph, batch: &Self::Batch) -> (NodeId, ParamNodes) {
            let mut nodes = ParamNodes::new();
            let w = nodes.bind(g, &self.w);
            let b = nodes.bind(g, &self.b);
            let x = g.constant(batch.0.clone());
            let xw = g.matmul(x, w);
            let logits = g.add_bias(xw, b);
            (g.softmax_cross_entropy(logits, &batch.1), nodes)
        }

        fn params(&self) -> Vec<&Param> {
            vec![&self.w, &self.b]
        }

        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.w, &mut self.b]
        }
    }

    fn affine() -> Affine {
        Affine {
            w: Param::new(
                "w",
                Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4, 0.0, -0.1], &[3, 2]),
            ),
            b: Param::new("b", Tensor::zeros(&[2])),
        }
    }

    #[test]
    fn flat_round_trip() {
        let mut m = affine();
        let flat = flat_params(&m);
        assert_eq!(flat.len(), flat_dim(&m));
        let doubled: Vec<f32> = flat.iter().map(|v| v * 2.0).collect();
        load_flat(&mut m, &doubled);
        assert_eq!(flat_params(&m), doubled);
    }

    #[test]
    fn loss_and_grad_shapes() {
        let m = affine();
        let batch = (Tensor::ones(&[4, 3]), vec![0, 1, 0, 1]);
        let (loss, grads) = loss_and_grad(&m, &batch);
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(grads.len(), flat_dim(&m));
        assert!(grads.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn sgd_descends_on_model_loss() {
        let mut m = affine();
        let batch = (Tensor::ones(&[4, 3]), vec![0, 1, 0, 1]);
        let (initial, _) = loss_and_grad(&m, &batch);
        for _ in 0..50 {
            let (_, grads) = loss_and_grad(&m, &batch);
            let mut flat = flat_params(&m);
            for (p, g) in flat.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
            load_flat(&mut m, &flat);
        }
        let (final_loss, _) = loss_and_grad(&m, &batch);
        assert!(final_loss < initial, "{final_loss} !< {initial}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn load_flat_wrong_length_panics() {
        let mut m = affine();
        load_flat(&mut m, &[0.0; 3]);
    }

    #[test]
    fn param_groups_mirror_binding_order() {
        let m = affine();
        let groups = param_groups(&m);
        assert_eq!(groups.total(), flat_dim(&m));
        assert_eq!(groups.groups()[0].name, "w");
        assert_eq!(groups.groups()[0].len, 6);
        assert_eq!(groups.groups()[1].name, "b");
        assert_eq!(groups.groups()[1].offset, 6);
    }
}
