//! Dense and embedding layers.

use crate::model::{Param, ParamNodes};
use yf_autograd::{Graph, NodeId};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

/// A fully connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight `[in, out]`.
    pub w: Param,
    /// Bias `[out]`, optional.
    pub b: Option<Param>,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new(name: &str, fan_in: usize, fan_out: usize, bias: bool, rng: &mut Pcg32) -> Self {
        Linear {
            w: Param::new(
                format!("{name}.w"),
                Tensor::xavier(&[fan_in, fan_out], fan_in, fan_out, rng),
            ),
            b: bias.then(|| Param::new(format!("{name}.b"), Tensor::zeros(&[fan_out]))),
        }
    }

    /// Binds parameters and applies the layer to `[B, in]`.
    pub fn forward(&self, g: &mut Graph, nodes: &mut ParamNodes, x: NodeId) -> NodeId {
        let w = nodes.bind(g, &self.w);
        let y = g.matmul(x, w);
        match &self.b {
            Some(b) => {
                let b = nodes.bind(g, b);
                g.add_bias(y, b)
            }
            None => y,
        }
    }

    /// Applies the layer reusing an already-bound weight node (weight
    /// tying; `w_t` must be the transpose-shaped `[in, out]` weight).
    pub fn forward_with_weight(
        &self,
        g: &mut Graph,
        nodes: &mut ParamNodes,
        x: NodeId,
        w: NodeId,
    ) -> NodeId {
        let y = g.matmul(x, w);
        match &self.b {
            Some(b) => {
                let b = nodes.bind(g, b);
                g.add_bias(y, b)
            }
            None => y,
        }
    }

    /// Parameters in binding order.
    pub fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.w];
        if let Some(b) = &self.b {
            v.push(b);
        }
        v
    }

    /// Mutable parameters in binding order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.w];
        if let Some(b) = &mut self.b {
            v.push(b);
        }
        v
    }
}

/// A token embedding table `[vocab, dim]`.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table.
    pub w: Param,
}

impl Embedding {
    /// Normal(0, 0.1)-initialized embedding.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut Pcg32) -> Self {
        let mut t = Tensor::randn(&[vocab, dim], rng);
        t.scale_in_place(0.1);
        Embedding {
            w: Param::new(format!("{name}.w"), t),
        }
    }

    /// Binds the table and gathers rows for `ids`, producing
    /// `[ids.len(), dim]`.
    pub fn forward(&self, g: &mut Graph, nodes: &mut ParamNodes, ids: &[usize]) -> NodeId {
        let w = nodes.bind(g, &self.w);
        g.embedding(w, ids)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.w.value.shape()[0]
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.w.value.shape()[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = Pcg32::seed(1);
        let layer = Linear::new("fc", 4, 3, true, &mut rng);
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let x = g.constant(Tensor::ones(&[2, 4]));
        let y = layer.forward(&mut g, &mut nodes, x);
        assert_eq!(g.value(y).shape(), &[2, 3]);
        assert_eq!(nodes.ids().len(), 2);
    }

    #[test]
    fn linear_without_bias_binds_one_param() {
        let mut rng = Pcg32::seed(2);
        let layer = Linear::new("fc", 4, 3, false, &mut rng);
        assert_eq!(layer.params().len(), 1);
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut rng = Pcg32::seed(3);
        let emb = Embedding::new("emb", 5, 2, &mut rng);
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let out = emb.forward(&mut g, &mut nodes, &[4, 0, 4]);
        assert_eq!(g.value(out).shape(), &[3, 2]);
        let row4: Vec<f32> = emb.w.value.data()[8..10].to_vec();
        assert_eq!(&g.value(out).data()[0..2], row4.as_slice());
        assert_eq!(&g.value(out).data()[4..6], row4.as_slice());
    }
}
