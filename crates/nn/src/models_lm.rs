//! LSTM language models (char-level, word-level, tied-embedding).

use crate::linear::{Embedding, Linear};
use crate::lstm::Lstm;
use crate::model::{Param, ParamNodes, SupervisedModel};
use yf_autograd::{Graph, NodeId};
use yf_tensor::rng::Pcg32;

/// A teacher-forced language-modeling batch.
///
/// `inputs`/`targets` are `[batch * time]` token ids laid out timestep
/// major-within-row: position `b * time + t` is sequence `b` at step `t`.
#[derive(Debug, Clone)]
pub struct LmBatch {
    /// Input token ids.
    pub inputs: Vec<usize>,
    /// Next-token targets, aligned with `inputs`.
    pub targets: Vec<usize>,
    /// Number of sequences.
    pub batch: usize,
    /// Sequence length.
    pub time: usize,
}

impl LmBatch {
    /// Validates and constructs a batch.
    ///
    /// # Panics
    ///
    /// Panics if lengths do not equal `batch * time`.
    pub fn new(inputs: Vec<usize>, targets: Vec<usize>, batch: usize, time: usize) -> Self {
        assert_eq!(inputs.len(), batch * time, "lm batch: inputs length");
        assert_eq!(targets.len(), batch * time, "lm batch: targets length");
        LmBatch {
            inputs,
            targets,
            batch,
            time,
        }
    }
}

/// Architecture of an [`LstmLm`] (mirrors the LSTM rows of Table 3).
#[derive(Debug, Clone)]
pub struct LstmLmConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub embed: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Stacked layers.
    pub layers: usize,
    /// Tie the input embedding and output projection (Press & Wolf,
    /// the "Tied LSTM" of Appendix J.4). Requires `embed == hidden`.
    pub tied: bool,
    /// Recurrent-weight scale; > 1 induces exploding gradients (Fig. 6).
    pub recurrent_scale: f32,
}

impl LstmLmConfig {
    /// A small char-level model (TinyShakespeare-like row of Table 3).
    pub fn char_like(vocab: usize) -> Self {
        LstmLmConfig {
            vocab,
            embed: 16,
            hidden: 16,
            layers: 2,
            tied: false,
            recurrent_scale: 1.0,
        }
    }

    /// A small word-level model (PTB-like row of Table 3).
    pub fn word_like(vocab: usize) -> Self {
        LstmLmConfig {
            vocab,
            embed: 24,
            hidden: 24,
            layers: 2,
            tied: false,
            recurrent_scale: 1.0,
        }
    }

    /// A tied-embedding variant (Appendix J.4).
    pub fn tied_like(vocab: usize) -> Self {
        LstmLmConfig {
            tied: true,
            ..LstmLmConfig::word_like(vocab)
        }
    }
}

/// An LSTM language model: embedding -> LSTM stack -> vocabulary logits,
/// with mean cross-entropy over all positions.
#[derive(Debug, Clone)]
pub struct LstmLm {
    embed: Embedding,
    lstm: Lstm,
    /// Untied output projection; `None` when embeddings are tied.
    out: Option<Linear>,
    /// Output bias used in the tied configuration.
    tied_bias: Option<Param>,
    cfg: LstmLmConfig,
}

impl LstmLm {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if `tied` is requested with `embed != hidden`.
    pub fn new(cfg: LstmLmConfig, rng: &mut Pcg32) -> Self {
        if cfg.tied {
            assert_eq!(
                cfg.embed, cfg.hidden,
                "tied embeddings require embed == hidden"
            );
        }
        let embed = Embedding::new("lm.embed", cfg.vocab, cfg.embed, rng);
        let lstm = Lstm::with_recurrent_scale(
            "lm.lstm",
            cfg.embed,
            cfg.hidden,
            cfg.layers,
            cfg.recurrent_scale,
            rng,
        );
        let (out, tied_bias) = if cfg.tied {
            (
                None,
                Some(Param::new(
                    "lm.tied_bias",
                    yf_tensor::Tensor::zeros(&[cfg.vocab]),
                )),
            )
        } else {
            (
                Some(Linear::new("lm.out", cfg.hidden, cfg.vocab, true, rng)),
                None,
            )
        };
        LstmLm {
            embed,
            lstm,
            out,
            tied_bias,
            cfg,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &LstmLmConfig {
        &self.cfg
    }

    /// Builds `[time * batch, vocab]` logits for a batch (timestep-major
    /// rows; see [`Self::reorder_targets`]), binding all parameters onto
    /// `g`.
    pub fn logits(&self, g: &mut Graph, nodes: &mut ParamNodes, batch: &LmBatch) -> NodeId {
        let (b, t) = (batch.batch, batch.time);
        // Bind the embedding table once (first in params() order); every
        // per-step gather reuses the same bound node so its gradient
        // accumulates across timesteps — and, when tied, across the
        // output projection too.
        let embed_w = nodes.bind(g, &self.embed.w);
        let mut xs = Vec::with_capacity(t);
        for step in 0..t {
            let ids: Vec<usize> = (0..b).map(|r| batch.inputs[r * t + step]).collect();
            xs.push(g.embedding(embed_w, &ids));
        }
        let (outs, _) = self.lstm.forward_seq(g, nodes, &xs, b, None);
        // Stack the per-step [B, H] outputs into [T*B, H]; row t*B + b is
        // sequence b at step t.
        let h_cat = concat_rows(g, &outs);
        match (&self.out, &self.tied_bias) {
            (Some(out), None) => out.forward(g, nodes, h_cat),
            (None, Some(bias)) => {
                // Tied output: logits = h E^T + bias, reusing the bound
                // embedding table through the fused-transpose product (no
                // transpose is ever materialized, forward or backward).
                let logits = g.matmul_nt(h_cat, embed_w);
                let bias_id = nodes.bind(g, bias);
                g.add_bias(logits, bias_id)
            }
            _ => unreachable!("exactly one of out/tied_bias is set"),
        }
    }

    /// Targets reordered to match [`Self::logits`] row order
    /// (timestep-major: row `t * batch + b`).
    pub fn reorder_targets(&self, batch: &LmBatch) -> Vec<usize> {
        let (b, t) = (batch.batch, batch.time);
        let mut out = Vec::with_capacity(b * t);
        for step in 0..t {
            for r in 0..b {
                out.push(batch.targets[r * t + step]);
            }
        }
        out
    }
}

/// Concatenates `[B, H]` nodes into `[T*B, H]` (timestep-major rows).
pub(crate) fn concat_rows(g: &mut Graph, parts: &[NodeId]) -> NodeId {
    // Reshape each [B, H] into [1, B*H], concat along columns into
    // [1, T*B*H], then reshape to [T*B, H]. All reshapes are free-order
    // preserving, which keeps rows timestep-major.
    let (b, h) = {
        let v = g.value(parts[0]);
        (v.shape()[0], v.shape()[1])
    };
    let flat: Vec<NodeId> = parts.iter().map(|&p| g.reshape(p, &[1, b * h])).collect();
    let cat = g.concat_cols(&flat);
    g.reshape(cat, &[parts.len() * b, h])
}

impl SupervisedModel for LstmLm {
    type Batch = LmBatch;

    fn loss(&self, g: &mut Graph, batch: &Self::Batch) -> (NodeId, ParamNodes) {
        let mut nodes = ParamNodes::new();
        let logits = self.logits(g, &mut nodes, batch);
        let targets = self.reorder_targets(batch);
        (g.softmax_cross_entropy(logits, &targets), nodes)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.embed.w];
        v.extend(self.lstm.params());
        if let Some(out) = &self.out {
            v.extend(out.params());
        }
        if let Some(b) = &self.tied_bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.embed.w];
        v.extend(self.lstm.params_mut());
        if let Some(out) = &mut self.out {
            v.extend(out.params_mut());
        }
        if let Some(b) = &mut self.tied_bias {
            v.push(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{flat_dim, flat_params, load_flat, loss_and_grad};

    fn toy_batch(vocab: usize, b: usize, t: usize, seed: u64) -> LmBatch {
        let mut rng = Pcg32::seed(seed);
        let inputs: Vec<usize> = (0..b * t)
            .map(|_| rng.below(vocab as u32) as usize)
            .collect();
        // Target = next input (cyclic toy task).
        let targets: Vec<usize> = inputs.iter().map(|&i| (i + 1) % vocab).collect();
        LmBatch::new(inputs, targets, b, t)
    }

    #[test]
    fn untied_model_trains() {
        let mut rng = Pcg32::seed(40);
        let mut lm = LstmLm::new(
            LstmLmConfig {
                vocab: 8,
                embed: 6,
                hidden: 6,
                layers: 1,
                tied: false,
                recurrent_scale: 1.0,
            },
            &mut rng,
        );
        let batch = toy_batch(8, 4, 5, 41);
        let (initial, grads) = loss_and_grad(&lm, &batch);
        assert_eq!(grads.len(), flat_dim(&lm));
        for _ in 0..60 {
            let (_, grads) = loss_and_grad(&lm, &batch);
            let mut flat = flat_params(&lm);
            for (p, g) in flat.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
            load_flat(&mut lm, &flat);
        }
        let (final_loss, _) = loss_and_grad(&lm, &batch);
        assert!(final_loss < initial * 0.7, "{final_loss} vs {initial}");
    }

    #[test]
    fn tied_model_shares_embedding() {
        let mut rng = Pcg32::seed(42);
        let lm = LstmLm::new(LstmLmConfig::tied_like(10), &mut rng);
        // Tied model has embedding + lstm params + bias only.
        let untied = LstmLm::new(LstmLmConfig::word_like(10), &mut Pcg32::seed(42));
        assert!(flat_dim(&lm) < flat_dim(&untied), "tying removes a matrix");
        let batch = toy_batch(10, 2, 4, 43);
        let (loss, grads) = loss_and_grad(&lm, &batch);
        assert!(loss.is_finite());
        // Embedding gradient must combine input and output contributions.
        let emb_len = lm.embed.w.value.len();
        let nonzero = grads[..emb_len].iter().filter(|&&g| g != 0.0).count();
        assert!(nonzero > 0, "tied embedding receives gradient");
    }

    #[test]
    fn tied_model_trains() {
        let mut rng = Pcg32::seed(44);
        let mut lm = LstmLm::new(
            LstmLmConfig {
                vocab: 6,
                embed: 8,
                hidden: 8,
                layers: 1,
                tied: true,
                recurrent_scale: 1.0,
            },
            &mut rng,
        );
        let batch = toy_batch(6, 4, 4, 45);
        let (initial, _) = loss_and_grad(&lm, &batch);
        for _ in 0..80 {
            let (_, grads) = loss_and_grad(&lm, &batch);
            let mut flat = flat_params(&lm);
            for (p, g) in flat.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
            load_flat(&mut lm, &flat);
        }
        let (final_loss, _) = loss_and_grad(&lm, &batch);
        assert!(final_loss < initial * 0.8, "{final_loss} vs {initial}");
    }

    #[test]
    fn exploding_variant_produces_larger_gradients() {
        // Back-propagation through 48 steps: inflated recurrent weights
        // amplify the gradient norm (the seed is fixed, so this is a
        // deterministic comparison).
        let batch = toy_batch(8, 2, 48, 46);
        let grad_norm = |scale: f32| {
            let mut rng = Pcg32::seed(47);
            let lm = LstmLm::new(
                LstmLmConfig {
                    vocab: 8,
                    embed: 8,
                    hidden: 8,
                    layers: 1,
                    tied: false,
                    recurrent_scale: scale,
                },
                &mut rng,
            );
            let (_, grads) = loss_and_grad(&lm, &batch);
            grads.iter().map(|g| (g * g) as f64).sum::<f64>().sqrt()
        };
        let calm = grad_norm(1.0);
        let hot = grad_norm(2.0);
        assert!(hot > 2.0 * calm, "hot {hot} vs calm {calm}");
    }

    #[test]
    #[should_panic(expected = "embed == hidden")]
    fn tied_requires_matching_dims() {
        let mut rng = Pcg32::seed(48);
        LstmLm::new(
            LstmLmConfig {
                vocab: 5,
                embed: 4,
                hidden: 6,
                layers: 1,
                tied: true,
                recurrent_scale: 1.0,
            },
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "inputs length")]
    fn bad_batch_panics() {
        LmBatch::new(vec![0; 5], vec![0; 6], 2, 3);
    }
}
