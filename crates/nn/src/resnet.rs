//! CIFAR-style residual networks (Table 3 architecture families).
//!
//! The paper trains a 110-layer basic-block ResNet on CIFAR10 and a
//! 164-layer bottleneck ResNet on CIFAR100; Appendix J.4 adds a ResNeXt
//! (grouped 3x3 convolutions). This module implements all three families
//! with configurable depth/width so the reproduction can run them at
//! laptop scale while keeping the exact block structure.

use crate::conv_layers::{BatchNorm2d, Conv2dLayer};
use crate::linear::Linear;
use crate::model::{Param, ParamNodes, SupervisedModel};
use yf_autograd::{ConvSpec, Graph, NodeId};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

/// Residual block family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Two 3x3 convolutions (CIFAR10 ResNet in Table 3).
    Basic,
    /// 1x1 reduce, 3x3, 1x1 expand (CIFAR100 ResNet in Table 3). The 3x3
    /// stage uses `groups` channel groups (`groups > 1` gives ResNeXt).
    Bottleneck,
}

/// Architecture hyperparameters.
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Input image channels.
    pub in_channels: usize,
    /// Channel width of the first stage (doubles per stage).
    pub base_width: usize,
    /// Residual blocks per stage; stage `i > 0` downsamples by 2.
    pub stage_blocks: Vec<usize>,
    /// Block family.
    pub block: BlockKind,
    /// Channel groups in the bottleneck's 3x3 convolution.
    pub groups: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl ResNetConfig {
    /// A small basic-block network standing in for the paper's CIFAR10
    /// ResNet.
    pub fn cifar10_like(num_classes: usize) -> Self {
        ResNetConfig {
            in_channels: 3,
            base_width: 4,
            stage_blocks: vec![2, 2],
            block: BlockKind::Basic,
            groups: 1,
            num_classes,
        }
    }

    /// A small bottleneck network standing in for the paper's CIFAR100
    /// ResNet.
    pub fn cifar100_like(num_classes: usize) -> Self {
        ResNetConfig {
            in_channels: 3,
            base_width: 8,
            stage_blocks: vec![2, 2],
            block: BlockKind::Bottleneck,
            groups: 1,
            num_classes,
        }
    }

    /// A grouped-convolution bottleneck network standing in for the
    /// ResNeXt of Appendix J.4.
    pub fn resnext_like(num_classes: usize, groups: usize) -> Self {
        ResNetConfig {
            groups,
            ..ResNetConfig::cifar100_like(num_classes)
        }
    }
}

#[derive(Debug, Clone)]
struct Block {
    convs: Vec<(Conv2dLayer, BatchNorm2d)>,
    shortcut: Option<(Conv2dLayer, BatchNorm2d)>,
}

impl Block {
    fn new(
        name: &str,
        kind: BlockKind,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        groups: usize,
        rng: &mut Pcg32,
    ) -> Self {
        let mut convs = Vec::new();
        match kind {
            BlockKind::Basic => {
                convs.push((
                    Conv2dLayer::new(
                        &format!("{name}.conv1"),
                        in_ch,
                        out_ch,
                        3,
                        ConvSpec::same3x3(stride),
                        rng,
                    ),
                    BatchNorm2d::new(&format!("{name}.bn1"), out_ch),
                ));
                convs.push((
                    Conv2dLayer::new(
                        &format!("{name}.conv2"),
                        out_ch,
                        out_ch,
                        3,
                        ConvSpec::same3x3(1),
                        rng,
                    ),
                    BatchNorm2d::new(&format!("{name}.bn2"), out_ch),
                ));
            }
            BlockKind::Bottleneck => {
                let mid = (out_ch / 2).max(groups);
                convs.push((
                    Conv2dLayer::new(
                        &format!("{name}.conv1"),
                        in_ch,
                        mid,
                        1,
                        ConvSpec {
                            stride: 1,
                            padding: 0,
                            groups: 1,
                        },
                        rng,
                    ),
                    BatchNorm2d::new(&format!("{name}.bn1"), mid),
                ));
                convs.push((
                    Conv2dLayer::new(
                        &format!("{name}.conv2"),
                        mid,
                        mid,
                        3,
                        ConvSpec {
                            stride,
                            padding: 1,
                            groups,
                        },
                        rng,
                    ),
                    BatchNorm2d::new(&format!("{name}.bn2"), mid),
                ));
                convs.push((
                    Conv2dLayer::new(
                        &format!("{name}.conv3"),
                        mid,
                        out_ch,
                        1,
                        ConvSpec {
                            stride: 1,
                            padding: 0,
                            groups: 1,
                        },
                        rng,
                    ),
                    BatchNorm2d::new(&format!("{name}.bn3"), out_ch),
                ));
            }
        }
        let shortcut = (in_ch != out_ch || stride != 1).then(|| {
            (
                Conv2dLayer::new(
                    &format!("{name}.proj"),
                    in_ch,
                    out_ch,
                    1,
                    ConvSpec {
                        stride,
                        padding: 0,
                        groups: 1,
                    },
                    rng,
                ),
                BatchNorm2d::new(&format!("{name}.proj_bn"), out_ch),
            )
        });
        Block { convs, shortcut }
    }

    fn forward(&self, g: &mut Graph, nodes: &mut ParamNodes, x: NodeId) -> NodeId {
        let mut h = x;
        let last = self.convs.len() - 1;
        for (i, (conv, bn)) in self.convs.iter().enumerate() {
            h = conv.forward(g, nodes, h);
            h = bn.forward(g, nodes, h);
            if i != last {
                h = g.relu(h);
            }
        }
        let skip = match &self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(g, nodes, x);
                bn.forward(g, nodes, s)
            }
            None => x,
        };
        let sum = g.add(h, skip);
        g.relu(sum)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        for (conv, bn) in &self.convs {
            v.push(&conv.w);
            v.push(&bn.gamma);
            v.push(&bn.beta);
        }
        if let Some((conv, bn)) = &self.shortcut {
            v.push(&conv.w);
            v.push(&bn.gamma);
            v.push(&bn.beta);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        for (conv, bn) in &mut self.convs {
            v.push(&mut conv.w);
            v.push(&mut bn.gamma);
            v.push(&mut bn.beta);
        }
        if let Some((conv, bn)) = &mut self.shortcut {
            v.push(&mut conv.w);
            v.push(&mut bn.gamma);
            v.push(&mut bn.beta);
        }
        v
    }
}

/// A CIFAR-style residual network classifier.
#[derive(Debug, Clone)]
pub struct ResNet {
    stem: (Conv2dLayer, BatchNorm2d),
    stages: Vec<Vec<Block>>,
    head: Linear,
}

impl ResNet {
    /// Builds the network from a configuration.
    pub fn new(cfg: &ResNetConfig, rng: &mut Pcg32) -> Self {
        let stem_w = cfg.base_width;
        let stem = (
            Conv2dLayer::new(
                "stem.conv",
                cfg.in_channels,
                stem_w,
                3,
                ConvSpec::same3x3(1),
                rng,
            ),
            BatchNorm2d::new("stem.bn", stem_w),
        );
        let mut stages = Vec::new();
        let mut in_ch = stem_w;
        for (s, &blocks) in cfg.stage_blocks.iter().enumerate() {
            let out_ch = cfg.base_width << s;
            let mut stage = Vec::new();
            for b in 0..blocks {
                let stride = if s > 0 && b == 0 { 2 } else { 1 };
                stage.push(Block::new(
                    &format!("stage{s}.block{b}"),
                    cfg.block,
                    in_ch,
                    out_ch,
                    stride,
                    cfg.groups,
                    rng,
                ));
                in_ch = out_ch;
            }
            stages.push(stage);
        }
        let head = Linear::new("head", in_ch, cfg.num_classes, true, rng);
        ResNet { stem, stages, head }
    }

    /// Class logits for an image batch node `[B, C, H, W]`.
    pub fn logits(&self, g: &mut Graph, nodes: &mut ParamNodes, x: NodeId) -> NodeId {
        let mut h = self.stem.0.forward(g, nodes, x);
        h = self.stem.1.forward(g, nodes, h);
        h = g.relu(h);
        for stage in &self.stages {
            for block in stage {
                h = block.forward(g, nodes, h);
            }
        }
        let pooled = g.global_avg_pool(h);
        self.head.forward(g, nodes, pooled)
    }

    /// Fraction of images classified correctly.
    pub fn accuracy(&self, images: &Tensor, labels: &[usize]) -> f32 {
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let x = g.constant(images.clone());
        let logits = self.logits(&mut g, &mut nodes, x);
        crate::model::argmax_accuracy(g.value(logits), labels)
    }
}

impl SupervisedModel for ResNet {
    type Batch = (Tensor, Vec<usize>);

    fn loss(&self, g: &mut Graph, batch: &Self::Batch) -> (NodeId, ParamNodes) {
        let mut nodes = ParamNodes::new();
        let x = g.constant(batch.0.clone());
        let logits = self.logits(g, &mut nodes, x);
        (g.softmax_cross_entropy(logits, &batch.1), nodes)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.stem.0.w, &self.stem.1.gamma, &self.stem.1.beta];
        for stage in &self.stages {
            for block in stage {
                v.extend(block.params());
            }
        }
        v.extend(self.head.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![
            &mut self.stem.0.w,
            &mut self.stem.1.gamma,
            &mut self.stem.1.beta,
        ];
        for stage in &mut self.stages {
            for block in stage {
                v.extend(block.params_mut());
            }
        }
        v.extend(self.head.params_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{flat_dim, flat_params, load_flat, loss_and_grad};

    fn tiny_batch(rng: &mut Pcg32, classes: usize) -> (Tensor, Vec<usize>) {
        let images = Tensor::randn(&[4, 3, 8, 8], rng);
        let labels = (0..4).map(|i| i % classes).collect();
        (images, labels)
    }

    #[test]
    fn basic_resnet_forward_and_grads() {
        let mut rng = Pcg32::seed(30);
        let net = ResNet::new(&ResNetConfig::cifar10_like(4), &mut rng);
        let batch = tiny_batch(&mut rng, 4);
        let (loss, grads) = loss_and_grad(&net, &batch);
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(grads.len(), flat_dim(&net));
        let nonzero = grads.iter().filter(|&&g| g != 0.0).count();
        assert!(
            nonzero > grads.len() / 2,
            "gradients should flow everywhere ({nonzero}/{})",
            grads.len()
        );
    }

    #[test]
    fn bottleneck_and_grouped_variants_run() {
        let mut rng = Pcg32::seed(31);
        for cfg in [
            ResNetConfig::cifar100_like(6),
            ResNetConfig::resnext_like(6, 2),
        ] {
            let net = ResNet::new(&cfg, &mut rng);
            let batch = tiny_batch(&mut rng, 6);
            let (loss, grads) = loss_and_grad(&net, &batch);
            assert!(loss.is_finite(), "{cfg:?}");
            assert_eq!(grads.len(), flat_dim(&net));
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Pcg32::seed(32);
        let mut net = ResNet::new(&ResNetConfig::cifar10_like(2), &mut rng);
        let batch = tiny_batch(&mut rng, 2);
        let (initial, _) = loss_and_grad(&net, &batch);
        for _ in 0..30 {
            let (_, grads) = loss_and_grad(&net, &batch);
            let mut flat = flat_params(&net);
            for (p, g) in flat.iter_mut().zip(&grads) {
                *p -= 0.1 * g;
            }
            load_flat(&mut net, &flat);
        }
        let (final_loss, _) = loss_and_grad(&net, &batch);
        assert!(final_loss < initial * 0.8, "{final_loss} vs {initial}");
    }

    #[test]
    fn deeper_stages_halve_spatial_extent() {
        let mut rng = Pcg32::seed(33);
        let cfg = ResNetConfig {
            stage_blocks: vec![1, 1, 1],
            ..ResNetConfig::cifar10_like(3)
        };
        let net = ResNet::new(&cfg, &mut rng);
        // Just verify the full pipeline runs on a 16x16 input (two
        // downsamples -> 4x4 before pooling).
        let batch = (Tensor::randn(&[2, 3, 16, 16], &mut rng), vec![0, 1]);
        let (loss, _) = loss_and_grad(&net, &batch);
        assert!(loss.is_finite());
    }
}
