//! A plain multi-layer perceptron classifier (quickstart model).

use crate::linear::Linear;
use crate::model::{Param, ParamNodes, SupervisedModel};
use yf_autograd::{Graph, NodeId};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

/// An MLP with ReLU hidden layers and a softmax-cross-entropy loss.
///
/// # Example
///
/// ```
/// use yf_nn::{Mlp, SupervisedModel, loss_and_grad};
/// use yf_tensor::{Tensor, rng::Pcg32};
///
/// let mut rng = Pcg32::seed(0);
/// let mlp = Mlp::new(&[4, 16, 3], &mut rng);
/// let batch = (Tensor::ones(&[2, 4]), vec![0usize, 2]);
/// let (loss, grads) = loss_and_grad(&mlp, &batch);
/// assert!(loss > 0.0);
/// assert!(!grads.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP from layer widths `[in, hidden.., classes]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], rng: &mut Pcg32) -> Self {
        assert!(widths.len() >= 2, "mlp: need at least input and output");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(&format!("mlp.fc{i}"), w[0], w[1], true, rng))
            .collect();
        Mlp { layers }
    }

    /// Class logits for a `[B, in]` input node.
    pub fn logits(&self, g: &mut Graph, nodes: &mut ParamNodes, x: NodeId) -> NodeId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, nodes, h);
            if i != last {
                h = g.relu(h);
            }
        }
        h
    }

    /// Fraction of `inputs` rows classified as `labels`.
    pub fn accuracy(&self, inputs: &Tensor, labels: &[usize]) -> f32 {
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let x = g.constant(inputs.clone());
        let logits = self.logits(&mut g, &mut nodes, x);
        crate::model::argmax_accuracy(g.value(logits), labels)
    }
}

impl SupervisedModel for Mlp {
    type Batch = (Tensor, Vec<usize>);

    fn loss(&self, g: &mut Graph, batch: &Self::Batch) -> (NodeId, ParamNodes) {
        let mut nodes = ParamNodes::new();
        let x = g.constant(batch.0.clone());
        let logits = self.logits(g, &mut nodes, x);
        (g.softmax_cross_entropy(logits, &batch.1), nodes)
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{flat_params, load_flat, loss_and_grad};

    #[test]
    fn learns_a_linearly_separable_problem() {
        let mut rng = Pcg32::seed(20);
        let mut mlp = Mlp::new(&[2, 8, 2], &mut rng);
        // Class = sign of first coordinate.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..64 {
            let a = rng.normal();
            let b = rng.normal();
            xs.extend_from_slice(&[a, b]);
            ys.push(usize::from(a > 0.0));
        }
        let inputs = Tensor::from_vec(xs, &[64, 2]);
        let batch = (inputs.clone(), ys.clone());
        for _ in 0..200 {
            let (_, grads) = loss_and_grad(&mlp, &batch);
            let mut flat = flat_params(&mlp);
            for (p, g) in flat.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
            load_flat(&mut mlp, &flat);
        }
        let acc = mlp.accuracy(&inputs, &ys);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_widths_panics() {
        Mlp::new(&[3], &mut Pcg32::seed(0));
    }
}
