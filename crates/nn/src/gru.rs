//! GRU cells and stacks (Cho et al. 2014).
//!
//! Not used by the paper's Table 3 models, but YellowFin is a generic
//! momentum-SGD tuner: the GRU gives the test suite and downstream users
//! a second recurrent family to tune, with a different gate structure
//! (no separate cell state) than the LSTM.

use crate::model::{Param, ParamNodes};
use yf_autograd::{Graph, NodeId};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

/// A gated recurrent unit cell.
///
/// The update `z` and reset `r` gates share fused weights
/// (`[I, 2H]`/`[H, 2H]`, slice order `[z, r]`); the candidate state has
/// its own pair because it sees `r ⊙ h` rather than `h`.
#[derive(Debug, Clone)]
pub struct GruCell {
    /// Input-to-gates weight `[I, 2H]`.
    pub w_xg: Param,
    /// Hidden-to-gates weight `[H, 2H]`.
    pub w_hg: Param,
    /// Gate bias `[2H]` (update-gate slice initialized to 1: sluggish
    /// state change by default, mirroring the LSTM forget-bias trick).
    pub b_g: Param,
    /// Input-to-candidate weight `[I, H]`.
    pub w_xc: Param,
    /// (reset ⊙ hidden)-to-candidate weight `[H, H]`.
    pub w_hc: Param,
    /// Candidate bias `[H]`.
    pub b_c: Param,
    hidden: usize,
}

impl GruCell {
    /// Creates a Xavier-initialized cell.
    pub fn new(name: &str, input: usize, hidden: usize, rng: &mut Pcg32) -> Self {
        let mut b_g = Tensor::zeros(&[2 * hidden]);
        for i in 0..hidden {
            b_g.data_mut()[i] = 1.0;
        }
        GruCell {
            w_xg: Param::new(
                format!("{name}.w_xg"),
                Tensor::xavier(&[input, 2 * hidden], input, hidden, rng),
            ),
            w_hg: Param::new(
                format!("{name}.w_hg"),
                Tensor::xavier(&[hidden, 2 * hidden], hidden, hidden, rng),
            ),
            b_g: Param::new(format!("{name}.b_g"), b_g),
            w_xc: Param::new(
                format!("{name}.w_xc"),
                Tensor::xavier(&[input, hidden], input, hidden, rng),
            ),
            w_hc: Param::new(
                format!("{name}.w_hc"),
                Tensor::xavier(&[hidden, hidden], hidden, hidden, rng),
            ),
            b_c: Param::new(format!("{name}.b_c"), Tensor::zeros(&[hidden])),
            hidden,
        }
    }

    /// Hidden width `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Binds the cell's parameters once per graph.
    pub fn bind(&self, g: &mut Graph, nodes: &mut ParamNodes) -> [NodeId; 6] {
        [
            nodes.bind(g, &self.w_xg),
            nodes.bind(g, &self.w_hg),
            nodes.bind(g, &self.b_g),
            nodes.bind(g, &self.w_xc),
            nodes.bind(g, &self.w_hc),
            nodes.bind(g, &self.b_c),
        ]
    }

    /// One timestep: `x [B, I]`, `h [B, H]` -> next hidden `[B, H]`.
    pub fn step(&self, g: &mut Graph, bound: [NodeId; 6], x: NodeId, h: NodeId) -> NodeId {
        let [w_xg, w_hg, b_g, w_xc, w_hc, b_c] = bound;
        let hsz = self.hidden;
        let xg = g.matmul(x, w_xg);
        let hg = g.matmul(h, w_hg);
        let pre = g.add(xg, hg);
        let gates = g.add_bias(pre, b_g);
        let z_pre = g.slice_cols(gates, 0, hsz);
        let r_pre = g.slice_cols(gates, hsz, hsz);
        let z = g.sigmoid(z_pre);
        let r = g.sigmoid(r_pre);
        let rh = g.mul(r, h);
        let xc = g.matmul(x, w_xc);
        let hc = g.matmul(rh, w_hc);
        let cand_pre0 = g.add(xc, hc);
        let cand_pre = g.add_bias(cand_pre0, b_c);
        let cand = g.tanh(cand_pre);
        // h' = (1 - z) * h + z * cand
        let batch = g.value(h).shape()[0];
        let ones = g.constant(Tensor::ones(&[batch, hsz]));
        let one_m_z = g.sub(ones, z);
        let keep = g.mul(one_m_z, h);
        let new = g.mul(z, cand);
        g.add(keep, new)
    }

    /// Zero initial hidden state for batch size `b`.
    pub fn zero_state(&self, g: &mut Graph, b: usize) -> NodeId {
        g.constant(Tensor::zeros(&[b, self.hidden]))
    }

    /// Parameters in binding order.
    pub fn params(&self) -> Vec<&Param> {
        vec![
            &self.w_xg, &self.w_hg, &self.b_g, &self.w_xc, &self.w_hc, &self.b_c,
        ]
    }

    /// Mutable parameters in binding order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.w_xg,
            &mut self.w_hg,
            &mut self.b_g,
            &mut self.w_xc,
            &mut self.w_hc,
            &mut self.b_c,
        ]
    }
}

/// A stack of GRU layers run over a sequence.
#[derive(Debug, Clone)]
pub struct Gru {
    /// The layers, bottom first.
    pub cells: Vec<GruCell>,
}

impl Gru {
    /// Builds `layers` stacked cells.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(name: &str, input: usize, hidden: usize, layers: usize, rng: &mut Pcg32) -> Self {
        assert!(layers > 0, "gru: needs at least one layer");
        let cells = (0..layers)
            .map(|l| {
                let in_dim = if l == 0 { input } else { hidden };
                GruCell::new(&format!("{name}.l{l}"), in_dim, hidden, rng)
            })
            .collect();
        Gru { cells }
    }

    /// Runs the stack over per-timestep `[B, I]` nodes, returning the top
    /// layer's outputs and all final hidden states.
    pub fn forward_seq(
        &self,
        g: &mut Graph,
        nodes: &mut ParamNodes,
        xs: &[NodeId],
        batch: usize,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        let bound: Vec<_> = self.cells.iter().map(|c| c.bind(g, nodes)).collect();
        let mut states: Vec<NodeId> = self.cells.iter().map(|c| c.zero_state(g, batch)).collect();
        let mut outputs = Vec::with_capacity(xs.len());
        for &x in xs {
            let mut input = x;
            for (l, cell) in self.cells.iter().enumerate() {
                let next = cell.step(g, bound[l], input, states[l]);
                input = next;
                states[l] = next;
            }
            outputs.push(input);
        }
        (outputs, states)
    }

    /// Parameters of all cells, in binding order.
    pub fn params(&self) -> Vec<&Param> {
        self.cells.iter().flat_map(|c| c.params()).collect()
    }

    /// Mutable parameters of all cells, in binding order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.cells.iter_mut().flat_map(|c| c.params_mut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yf_autograd::check::assert_grads_close;

    #[test]
    fn step_shapes() {
        let mut rng = Pcg32::seed(60);
        let cell = GruCell::new("g", 3, 5, &mut rng);
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let bound = cell.bind(&mut g, &mut nodes);
        let x = g.constant(Tensor::ones(&[2, 3]));
        let h0 = cell.zero_state(&mut g, 2);
        let h1 = cell.step(&mut g, bound, x, h0);
        assert_eq!(g.value(h1).shape(), &[2, 5]);
        assert_eq!(nodes.ids().len(), 6);
    }

    #[test]
    fn hidden_stays_bounded() {
        let mut rng = Pcg32::seed(61);
        let cell = GruCell::new("g", 2, 4, &mut rng);
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let bound = cell.bind(&mut g, &mut nodes);
        let x = g.constant(Tensor::full(&[1, 2], 50.0));
        let mut h = cell.zero_state(&mut g, 1);
        for _ in 0..8 {
            h = cell.step(&mut g, bound, x, h);
        }
        // h is a convex combination of tanh outputs: |h| <= 1.
        assert!(g.value(h).data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn gradients_flow_through_a_gru_step() {
        let mut rng = Pcg32::seed(62);
        let x = Tensor::randn(&[2, 3], &mut rng);
        let h = Tensor::randn(&[2, 4], &mut rng);
        let cell = GruCell::new("g", 3, 4, &mut rng);
        let inputs: Vec<Tensor> = std::iter::once(x.clone())
            .chain(std::iter::once(h.clone()))
            .chain(cell.params().iter().map(|p| p.value.clone()))
            .collect();
        assert_grads_close(
            &inputs,
            |g, ids| {
                let x = ids[0];
                let h = ids[1];
                // Rebuild a cell whose params are the graph leaves by
                // driving the same op sequence manually.
                let [w_xg, w_hg, b_g, w_xc, w_hc, b_c] =
                    [ids[2], ids[3], ids[4], ids[5], ids[6], ids[7]];
                let xg = g.matmul(x, w_xg);
                let hg = g.matmul(h, w_hg);
                let pre = g.add(xg, hg);
                let gates = g.add_bias(pre, b_g);
                let z_pre = g.slice_cols(gates, 0, 4);
                let r_pre = g.slice_cols(gates, 4, 4);
                let z = g.sigmoid(z_pre);
                let r = g.sigmoid(r_pre);
                let rh = g.mul(r, h);
                let xc = g.matmul(x, w_xc);
                let hc = g.matmul(rh, w_hc);
                let cp0 = g.add(xc, hc);
                let cp = g.add_bias(cp0, b_c);
                let cand = g.tanh(cp);
                let ones = g.constant(Tensor::ones(&[2, 4]));
                let omz = g.sub(ones, z);
                let keep = g.mul(omz, h);
                let upd = g.mul(z, cand);
                let hn = g.add(keep, upd);
                let sq = g.mul(hn, hn);
                g.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn stack_trains_on_toy_sequence() {
        use crate::model::{flat_params, load_flat, loss_and_grad, SupervisedModel};

        // A tiny GRU classifier: read 4 steps, classify by final state.
        struct GruClassifier {
            gru: Gru,
            head: crate::Linear,
        }
        impl SupervisedModel for GruClassifier {
            type Batch = (Vec<Tensor>, Vec<usize>);
            fn loss(&self, g: &mut Graph, batch: &Self::Batch) -> (NodeId, ParamNodes) {
                let mut nodes = ParamNodes::new();
                let xs: Vec<NodeId> = batch.0.iter().map(|t| g.constant(t.clone())).collect();
                let b = batch.1.len();
                let (outs, _) = self.gru.forward_seq(g, &mut nodes, &xs, b);
                let logits = self.head.forward(g, &mut nodes, *outs.last().unwrap());
                (g.softmax_cross_entropy(logits, &batch.1), nodes)
            }
            fn params(&self) -> Vec<&Param> {
                let mut v = self.gru.params();
                v.extend(self.head.params());
                v
            }
            fn params_mut(&mut self) -> Vec<&mut Param> {
                let mut v = self.gru.params_mut();
                v.extend(self.head.params_mut());
                v
            }
        }

        let mut rng = Pcg32::seed(63);
        let mut model = GruClassifier {
            gru: Gru::new("gru", 2, 8, 1, &mut rng),
            head: crate::Linear::new("head", 8, 2, true, &mut rng),
        };
        // Class = whether the first input's first coordinate is positive.
        let mut data_rng = Pcg32::seed(64);
        let xs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::randn(&[8, 2], &mut data_rng))
            .collect();
        let ys: Vec<usize> = (0..8)
            .map(|r| usize::from(xs[0].at(&[r, 0]) > 0.0))
            .collect();
        let batch = (xs, ys);
        let (initial, _) = loss_and_grad(&model, &batch);
        for _ in 0..120 {
            let (_, grads) = loss_and_grad(&model, &batch);
            let mut flat = flat_params(&model);
            for (p, g) in flat.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
            load_flat(&mut model, &flat);
        }
        let (final_loss, _) = loss_and_grad(&model, &batch);
        assert!(final_loss < initial * 0.5, "{final_loss} vs {initial}");
    }
}
