//! Convolution and batch-normalization layers.

use crate::model::{Param, ParamNodes};
use yf_autograd::{ConvSpec, Graph, NodeId};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

/// A 2-D convolution layer (no bias — every use in the ResNets is
/// followed by batch normalization, which absorbs it).
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    /// Kernel `[out, in/groups, k, k]`.
    pub w: Param,
    /// Stride/padding/groups.
    pub spec: ConvSpec,
}

impl Conv2dLayer {
    /// He-initialized square convolution.
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        spec: ConvSpec,
        rng: &mut Pcg32,
    ) -> Self {
        assert_eq!(in_ch % spec.groups, 0, "conv layer: channels vs groups");
        let fan_in = (in_ch / spec.groups) * kernel * kernel;
        Conv2dLayer {
            w: Param::new(
                format!("{name}.w"),
                Tensor::he(&[out_ch, in_ch / spec.groups, kernel, kernel], fan_in, rng),
            ),
            spec,
        }
    }

    /// Binds the kernel and convolves `[B, Cin, H, W]`.
    pub fn forward(&self, g: &mut Graph, nodes: &mut ParamNodes, x: NodeId) -> NodeId {
        let w = nodes.bind(g, &self.w);
        g.conv2d(x, w, self.spec)
    }
}

/// Batch normalization over `[B, C, H, W]`.
///
/// This reproduction always normalizes with *batch* statistics (training
/// mode), including during evaluation — our synthetic validation batches
/// are the same size as training batches, so the eval-mode running-stats
/// refinement does not change any of the comparisons the paper makes.
/// (Documented as a deviation in DESIGN.md.)
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Per-channel scale, initialized to 1.
    pub gamma: Param,
    /// Per-channel shift, initialized to 0.
    pub beta: Param,
    /// Numerical floor inside the square root.
    pub eps: f32,
}

impl BatchNorm2d {
    /// A batch-norm layer for `channels` feature maps.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            eps: 1e-5,
        }
    }

    /// Binds scale/shift and normalizes.
    pub fn forward(&self, g: &mut Graph, nodes: &mut ParamNodes, x: NodeId) -> NodeId {
        let gamma = nodes.bind(g, &self.gamma);
        let beta = nodes.bind(g, &self.beta);
        g.batch_norm(x, gamma, beta, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_layer_output_shape() {
        let mut rng = Pcg32::seed(4);
        let layer = Conv2dLayer::new("c", 3, 8, 3, ConvSpec::same3x3(2), &mut rng);
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let x = g.constant(Tensor::ones(&[2, 3, 8, 8]));
        let y = layer.forward(&mut g, &mut nodes, x);
        assert_eq!(g.value(y).shape(), &[2, 8, 4, 4]);
    }

    #[test]
    fn batch_norm_normalizes_batch() {
        let mut rng = Pcg32::seed(5);
        let bn = BatchNorm2d::new("bn", 2);
        let mut g = Graph::new();
        let mut nodes = ParamNodes::new();
        let x = g.constant(Tensor::randn(&[4, 2, 3, 3], &mut rng).map(|v| 5.0 * v + 2.0));
        let y = bn.forward(&mut g, &mut nodes, x);
        let mean = g.value(y).mean();
        assert!(mean.abs() < 1e-4, "post-BN mean {mean}");
        assert_eq!(nodes.ids().len(), 2);
    }

    #[test]
    #[should_panic(expected = "channels vs groups")]
    fn bad_group_count_panics() {
        let mut rng = Pcg32::seed(6);
        let spec = ConvSpec {
            stride: 1,
            padding: 1,
            groups: 3,
        };
        Conv2dLayer::new("c", 4, 6, 3, spec, &mut rng);
    }
}
