//! Property-based tests over the model zoo: flat-parameter round trips,
//! gradient finiteness, and loss-decrease under gradient steps for
//! randomly sized architectures.

use proptest::prelude::*;
use yf_nn::{
    flat_dim, flat_params, load_flat, loss_and_grad, LmBatch, LstmLm, LstmLmConfig, Mlp,
    SupervisedModel,
};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

fn lm_batch(vocab: usize, b: usize, t: usize, seed: u64) -> LmBatch {
    let mut rng = Pcg32::seed(seed);
    let inputs: Vec<usize> = (0..b * t)
        .map(|_| rng.below(vocab as u32) as usize)
        .collect();
    let targets: Vec<usize> = inputs.iter().map(|&i| (i + 1) % vocab).collect();
    LmBatch::new(inputs, targets, b, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mlp_flat_round_trip(
        hidden in 1usize..24, classes in 2usize..6, seed in any::<u64>()
    ) {
        let mut rng = Pcg32::seed(seed);
        let mut mlp = Mlp::new(&[3, hidden, classes], &mut rng);
        let flat = flat_params(&mlp);
        prop_assert_eq!(flat.len(), flat_dim(&mlp));
        let perturbed: Vec<f32> = flat.iter().map(|v| v + 1.0).collect();
        load_flat(&mut mlp, &perturbed);
        prop_assert_eq!(flat_params(&mlp), perturbed);
    }

    #[test]
    fn mlp_gradients_finite_and_descend(
        hidden in 2usize..16, seed in any::<u64>()
    ) {
        let mut rng = Pcg32::seed(seed);
        let mlp = Mlp::new(&[4, hidden, 3], &mut rng);
        let x = Tensor::randn(&[6, 4], &mut rng);
        let y: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let batch = (x, y);
        let (loss, grads) = loss_and_grad(&mlp, &batch);
        prop_assert!(loss.is_finite());
        prop_assert!(grads.iter().all(|g| g.is_finite()));
        // A tiny step along -grad must not increase the loss (first-order).
        let mut moved = mlp.clone();
        let flat: Vec<f32> = flat_params(&mlp)
            .iter()
            .zip(&grads)
            .map(|(p, g)| p - 1e-3 * g)
            .collect();
        load_flat(&mut moved, &flat);
        let (loss2, _) = loss_and_grad(&moved, &batch);
        prop_assert!(loss2 <= loss + 1e-4, "{loss} -> {loss2}");
    }

    #[test]
    fn lstm_lm_shapes_hold_for_random_sizes(
        vocab in 4usize..12,
        hidden in 2usize..10,
        layers in 1usize..3,
        b in 1usize..4,
        t in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = Pcg32::seed(seed);
        let lm = LstmLm::new(
            LstmLmConfig {
                vocab,
                embed: hidden,
                hidden,
                layers,
                tied: false,
                recurrent_scale: 1.0,
            },
            &mut rng,
        );
        let batch = lm_batch(vocab, b, t, seed ^ 1);
        let (loss, grads) = loss_and_grad(&lm, &batch);
        prop_assert!(loss.is_finite() && loss > 0.0);
        prop_assert_eq!(grads.len(), flat_dim(&lm));
        // Initial loss should be near ln(vocab) for random weights.
        let uniform = (vocab as f32).ln();
        prop_assert!(loss < 3.0 * uniform, "loss {loss} vs ln V {uniform}");
    }

    #[test]
    fn tied_lm_has_fewer_params_than_untied(
        vocab in 4usize..16, hidden in 2usize..10, seed in any::<u64>()
    ) {
        let mk = |tied: bool| {
            LstmLm::new(
                LstmLmConfig {
                    vocab,
                    embed: hidden,
                    hidden,
                    layers: 1,
                    tied,
                    recurrent_scale: 1.0,
                },
                &mut Pcg32::seed(seed),
            )
        };
        let tied = mk(true);
        let untied = mk(false);
        // Tying removes the [hidden, vocab] projection matrix.
        prop_assert_eq!(
            flat_dim(&untied) - flat_dim(&tied),
            hidden * vocab
        );
    }
}

#[test]
fn params_and_bindings_agree_for_every_model() {
    // The binding-order contract: loss() must bind exactly params().len()
    // nodes, in order, for each model family.
    let mut rng = Pcg32::seed(99);
    let lm = LstmLm::new(LstmLmConfig::word_like(10), &mut rng);
    let batch = lm_batch(10, 2, 3, 5);
    let mut g = yf_autograd::Graph::new();
    let (_, nodes) = lm.loss(&mut g, &batch);
    assert_eq!(nodes.ids().len(), lm.params().len());
    for (id, p) in nodes.ids().iter().zip(lm.params()) {
        assert_eq!(g.value(*id).shape(), p.value.shape(), "param {}", p.name);
    }
}
