//! Optimizer checkpoint/resume conformance: for every checkpointable
//! optimizer, a mid-run snapshot restored into a freshly constructed
//! instance must continue the trajectory bit-identically — the contract
//! the fleet grid runner's per-cell resume rests on.

use yf_optim::clip::Clipped;
use yf_optim::schedule::{Schedule, Scheduled};
use yf_optim::{AdaGrad, Adam, MomentumSgd, Optimizer, RmsProp, Sgd};

/// Deterministic pseudo-gradient for step `t` (parameter-dependent so
/// state errors compound and become visible).
fn grad(x: &[f32], t: u64) -> Vec<f32> {
    x.iter()
        .enumerate()
        .map(|(i, &v)| v * (1.0 + (i as f32) * 0.1) + ((t % 7) as f32 - 3.0) * 0.01)
        .collect()
}

fn resume_matches(mut original: Box<dyn Optimizer>, mut fresh: Box<dyn Optimizer>) {
    let name = original.name();
    let mut x = vec![1.0f32, -2.0, 0.5, 3.0, -0.25];
    // Warm up, snapshot mid-run.
    for t in 0..23 {
        let g = grad(&x, t);
        original.step(&mut x, &g);
    }
    let snapshot = original
        .checkpoint_state()
        .unwrap_or_else(|| panic!("{name}: expected checkpoint support"));
    let mut x_resumed = x.clone();
    fresh
        .restore_checkpoint(&snapshot)
        .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
    // Both must continue identically.
    for t in 23..60 {
        let g = grad(&x, t);
        original.step(&mut x, &g);
        let g2 = grad(&x_resumed, t);
        fresh.step(&mut x_resumed, &g2);
    }
    assert_eq!(x, x_resumed, "{name}: resumed trajectory diverged");
}

#[test]
fn all_baselines_resume_bit_identically() {
    resume_matches(Box::new(Sgd::new(0.05)), Box::new(Sgd::new(0.05)));
    resume_matches(
        Box::new(MomentumSgd::new(0.05, 0.9)),
        Box::new(MomentumSgd::new(0.05, 0.9)),
    );
    resume_matches(
        Box::new(MomentumSgd::nesterov(0.05, 0.9)),
        Box::new(MomentumSgd::nesterov(0.05, 0.9)),
    );
    resume_matches(Box::new(Adam::new(0.01)), Box::new(Adam::new(0.01)));
    resume_matches(Box::new(AdaGrad::new(0.1)), Box::new(AdaGrad::new(0.1)));
    resume_matches(Box::new(RmsProp::new(0.005)), Box::new(RmsProp::new(0.005)));
}

#[test]
fn middleware_delegates_checkpoints_to_the_wrapped_optimizer() {
    resume_matches(
        Box::new(Clipped::new(MomentumSgd::new(0.05, 0.9), 0.5)),
        Box::new(Clipped::new(MomentumSgd::new(0.05, 0.9), 0.5)),
    );
    resume_matches(
        Box::new(Scheduled::new(
            Adam::new(0.01),
            Schedule::EveryEpoch { factor: 0.9 },
        )),
        Box::new(Scheduled::new(
            Adam::new(0.01),
            Schedule::EveryEpoch { factor: 0.9 },
        )),
    );
}

#[test]
fn restore_rejects_cross_kind_checkpoints() {
    let snapshot = Sgd::new(0.1).checkpoint_state().expect("sgd checkpoints");
    let mut adam = Adam::new(0.1);
    let err = adam.restore_checkpoint(&snapshot).unwrap_err();
    assert!(err.to_string().contains("kind"), "{err}");
}

#[test]
fn restore_rejects_truncated_checkpoints() {
    let mut opt = MomentumSgd::new(0.1, 0.9);
    opt.step(&mut [1.0, 2.0], &[0.5, -0.5]);
    let full = opt.checkpoint_state().expect("checkpointable");
    let truncated: String = full.lines().take(2).collect::<Vec<_>>().join("\n");
    let mut fresh = MomentumSgd::new(0.1, 0.9);
    assert!(fresh.restore_checkpoint(&truncated).is_err());
}

#[test]
fn scheduled_lr_decay_survives_the_round_trip() {
    // The decayed lr is part of the wrapped optimizer's state, so a
    // restore lands at the decayed rate, not the base rate.
    let mut opt = Scheduled::new(Sgd::new(1.0), Schedule::EveryEpoch { factor: 0.5 });
    opt.set_epoch(2);
    assert!((opt.learning_rate() - 0.25).abs() < 1e-7);
    let snap = opt.checkpoint_state().expect("checkpointable");
    let mut fresh = Scheduled::new(Sgd::new(1.0), Schedule::EveryEpoch { factor: 0.5 });
    fresh.restore_checkpoint(&snap).expect("valid");
    assert_eq!(fresh.learning_rate(), opt.learning_rate());
}
