//! Property-based tests for the baseline optimizers.

use proptest::prelude::*;
use yf_optim::clip::{clip_by_global_norm, global_norm, Clipped};
use yf_optim::sharded::step_sharded;
use yf_optim::{AdaGrad, Adam, MomentumSgd, Optimizer, RmsProp, Sgd};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SGD is linear in the gradient: step(g1 + g2) == step(g1) then
    /// step(g2) applied to the same start (for lr fixed).
    #[test]
    fn sgd_is_linear(
        g1 in prop::collection::vec(-10.0f32..10.0, 1..8),
        lr in 0.001f32..1.0,
    ) {
        let g2: Vec<f32> = g1.iter().map(|v| v * 0.5 - 1.0).collect();
        let dim = g1.len();
        let mut combined = vec![0.0f32; dim];
        let sum: Vec<f32> = g1.iter().zip(&g2).map(|(a, b)| a + b).collect();
        Sgd::new(lr).step(&mut combined, &sum);
        let mut sequential = vec![0.0f32; dim];
        let mut opt = Sgd::new(lr);
        opt.step(&mut sequential, &g1);
        opt.step(&mut sequential, &g2);
        for (c, s) in combined.iter().zip(&sequential) {
            prop_assert!((c - s).abs() < 1e-4, "{c} vs {s}");
        }
    }

    /// Adam's first step has magnitude exactly lr in every coordinate
    /// with a non-zero gradient (bias correction).
    #[test]
    fn adam_first_step_magnitude(
        g in prop::collection::vec(-100.0f32..100.0, 1..8),
        lr in 0.0001f32..0.5,
    ) {
        let mut x = vec![0.0f32; g.len()];
        Adam::new(lr).step(&mut x, &g);
        for (xi, gi) in x.iter().zip(&g) {
            if gi.abs() > 1e-3 {
                prop_assert!(
                    (xi.abs() - lr).abs() < lr * 0.01,
                    "step {xi} for grad {gi}, lr {lr}"
                );
                prop_assert!(xi.signum() == -gi.signum());
            }
        }
    }

    /// Momentum SGD's velocity form reproduces the Polyak position
    /// recurrence for arbitrary gradient streams.
    #[test]
    fn momentum_matches_position_form(
        grads in prop::collection::vec(-5.0f32..5.0, 2..20),
        lr in 0.001f32..0.3,
        mu in 0.0f32..0.95,
    ) {
        let mut opt = MomentumSgd::new(lr, mu);
        let mut x = vec![1.0f32];
        let mut manual = 1.0f64;
        let mut manual_prev = 1.0f64;
        for (t, &g) in grads.iter().enumerate() {
            opt.step(&mut x, &[g]);
            let next = if t == 0 {
                manual - f64::from(lr) * f64::from(g)
            } else {
                manual - f64::from(lr) * f64::from(g)
                    + f64::from(mu) * (manual - manual_prev)
            };
            manual_prev = manual;
            manual = next;
            prop_assert!((f64::from(x[0]) - manual).abs() < 1e-4,
                "step {t}: {} vs {manual}", x[0]);
        }
    }

    /// Clipping never increases the norm, never changes direction, and is
    /// idempotent.
    #[test]
    fn clip_contract(
        g in prop::collection::vec(-1e4f32..1e4, 1..16),
        threshold in 0.01f32..100.0,
    ) {
        let mut clipped = g.clone();
        clip_by_global_norm(&mut clipped, threshold);
        prop_assert!(global_norm(&clipped) <= threshold * (1.0 + 1e-4));
        // Direction preserved: clipped = s * g for one s in [0, 1].
        let norm_g = global_norm(&g);
        if norm_g > 0.0 {
            let s = global_norm(&clipped) / norm_g;
            for (c, o) in clipped.iter().zip(&g) {
                prop_assert!((c - s * o).abs() < 1e-2 * (1.0 + o.abs()));
            }
        }
        let mut twice = clipped.clone();
        clip_by_global_norm(&mut twice, threshold);
        for (a, b) in twice.iter().zip(&clipped) {
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()));
        }
    }

    /// All per-coordinate adaptive methods are scale-covariant in the
    /// direction: flipping the gradient sign flips the step.
    #[test]
    fn sign_symmetry(g in prop::collection::vec(0.01f32..10.0, 1..6)) {
        let neg: Vec<f32> = g.iter().map(|v| -v).collect();
        let run = |grad: &[f32]| -> Vec<Vec<f32>> {
            let mut outs = Vec::new();
            let opts: Vec<Box<dyn Optimizer>> = vec![
                Box::new(Adam::new(0.1)),
                Box::new(AdaGrad::new(0.1)),
                Box::new(RmsProp::new(0.1)),
            ];
            for mut opt in opts {
                let mut x = vec![0.0f32; grad.len()];
                opt.step(&mut x, grad);
                outs.push(x);
            }
            outs
        };
        let pos_steps = run(&g);
        let neg_steps = run(&neg);
        for (p, n) in pos_steps.iter().zip(&neg_steps) {
            for (a, b) in p.iter().zip(n) {
                prop_assert!((a + b).abs() < 1e-5, "asymmetric: {a} vs {b}");
            }
        }
    }

    /// `observe` + parallel `step_shard` over any shard count is bitwise
    /// identical to the one-phase `step`, for every baseline optimizer,
    /// dimension, and learning rate.
    #[test]
    fn sharded_apply_matches_step_bitwise(
        dim in 1usize..24,
        shards in 2usize..6,
        steps in 1usize..12,
        lr in 0.001f32..0.3,
    ) {
        let factories: Vec<Box<dyn Fn() -> Box<dyn Optimizer>>> = vec![
            Box::new(move || Box::new(Sgd::new(lr))),
            Box::new(move || Box::new(MomentumSgd::new(lr, 0.85))),
            Box::new(move || Box::new(MomentumSgd::nesterov(lr, 0.85))),
            Box::new(move || Box::new(Adam::new(lr))),
            Box::new(move || Box::new(AdaGrad::new(lr))),
            Box::new(move || Box::new(RmsProp::new(lr))),
            Box::new(move || Box::new(Clipped::new(MomentumSgd::new(lr, 0.85), 0.75))),
        ];
        for make in &factories {
            let run = |n_shards: usize| {
                let mut opt = make();
                let mut x: Vec<f32> = (0..dim).map(|i| 1.0 + (i as f32 * 0.37).sin()).collect();
                for t in 0..steps {
                    let g: Vec<f32> = x.iter().map(|&v| v + (t as f32) * 0.1).collect();
                    if n_shards == 0 {
                        opt.step(&mut x, &g);
                    } else {
                        step_sharded(opt.as_mut(), &mut x, &g, n_shards);
                    }
                }
                x
            };
            prop_assert_eq!(run(0), run(shards));
        }
    }
}
