//! Adam (Kingma & Ba, 2014) with zero-debiased moments.

use crate::checkpoint::{write_dim, OptStateError, StateReader, StateWriter};
use crate::{check_lengths, Hyper, Optimizer, ParamShard, ShardedState};
use yf_tensor::elementwise;

/// The Adam optimizer.
///
/// β1 may be *negative*: the paper's Figure 10 sweeps
/// `β1 ∈ {−0.2, 0.0, 0.3, 0.5, 0.7, 0.9}` under asynchrony, where negative
/// first-moment smoothing acts like negative momentum and compensates for
/// asynchrony-induced momentum. Bias correction `1 − β1^t` remains valid
/// for negative β1.
///
/// Two-phase mapping: `observe` advances the step counter `t` and reports
/// β1 as the [`Hyper::momentum`]; `step_shard` updates the per-shard
/// `(m, v)` moment buffers and the parameters in one fused pass.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    state: ShardedState,
    dim: Option<usize>,
}

impl Adam {
    /// Adam with the standard β1 = 0.9, β2 = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit moment coefficients.
    ///
    /// # Panics
    ///
    /// Panics unless `beta1 ∈ (−1, 1)` and `beta2 ∈ [0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(
            (-1.0..1.0).contains(&beta1),
            "adam: beta1 {beta1} out of (-1, 1)"
        );
        assert!(
            (0.0..1.0).contains(&beta2),
            "adam: beta2 {beta2} out of [0, 1)"
        );
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            state: ShardedState::new(2),
            dim: None,
        }
    }

    /// First-moment coefficient (Adam's "momentum").
    pub fn beta1(&self) -> f32 {
        self.beta1
    }
}

impl Optimizer for Adam {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> Hyper {
        let dim = *self.dim.get_or_insert(params.len());
        check_lengths(dim, params, grads);
        self.t += 1;
        Hyper::new(self.lr, self.beta1)
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        _partials: Vec<crate::StatsPartial>,
        _grad_scale: f32,
    ) -> Hyper {
        // Measurement ignores gradient values: no scaled copy needed.
        self.observe(params, grads)
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        shard.validate(params, grads);
        let beta1 = hyper.momentum;
        let bc1 = 1.0 - beta1.powi(self.t.min(i32::MAX as u64) as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t.min(i32::MAX as u64) as i32);
        self.state.with(shard, params.len(), |bufs| {
            let (m, rest) = bufs.split_first_mut().expect("adam: two state buffers");
            let v = &mut rest[0];
            if m.is_empty() {
                m.resize(params.len(), 0.0);
                v.resize(params.len(), 0.0);
            }
            elementwise::adam_step(
                params,
                m,
                v,
                grads,
                beta1,
                self.beta2,
                hyper.lr,
                self.eps,
                bc1,
                bc2,
                hyper.grad_scale,
            );
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn checkpoint_state(&self) -> Option<String> {
        let mut w = StateWriter::new("adam");
        w.f32_field("lr", self.lr);
        w.f32_field("beta1", self.beta1);
        w.f32_field("beta2", self.beta2);
        w.f32_field("eps", self.eps);
        w.field("t", self.t);
        write_dim(&mut w, "dim", self.dim);
        w.f32_slice("m", &self.state.flatten(0));
        w.f32_slice("v", &self.state.flatten(1));
        Some(w.finish())
    }

    fn restore_checkpoint(&mut self, text: &str) -> Result<(), OptStateError> {
        let r = StateReader::new(text, "adam")?;
        self.lr = r.f32("lr")?;
        self.beta1 = r.f32("beta1")?;
        self.beta2 = r.f32("beta2")?;
        self.eps = r.f32("eps")?;
        self.t = r.parse("t")?;
        self.dim = r.dim("dim")?;
        let (m, v) = (r.f32_vec("m")?, r.f32_vec("v")?);
        if m.len() != v.len() {
            return Err(OptStateError::new("adam: m and v lengths disagree"));
        }
        self.state = ShardedState::new(2);
        if !m.is_empty() {
            self.state.load_full(vec![m, v]);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_signed_lr() {
        // After bias correction, the very first Adam step is ±lr.
        let mut opt = Adam::new(0.01);
        let mut x = vec![0.0f32, 0.0];
        opt.step(&mut x, &[3.0, -0.5]);
        assert!((x[0] + 0.01).abs() < 1e-5, "{}", x[0]);
        assert!((x[1] - 0.01).abs() < 1e-5, "{}", x[1]);
    }

    #[test]
    fn negative_beta1_is_supported_and_converges() {
        let mut opt = Adam::with_betas(0.05, -0.2, 0.999);
        let mut x = vec![1.0f32];
        for _ in 0..400 {
            let g = vec![x[0]];
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-2, "{}", x[0]);
    }

    #[test]
    #[should_panic(expected = "beta1")]
    fn beta1_out_of_range_panics() {
        Adam::with_betas(0.1, 1.0, 0.999);
    }

    #[test]
    fn per_coordinate_scaling_equalizes() {
        // Adam normalizes per-coordinate magnitude: both coordinates of a
        // badly scaled quadratic move at similar speeds early on.
        let mut opt = Adam::new(0.05);
        let h = [1.0f32, 1000.0];
        let mut x = vec![1.0f32, 1.0];
        for _ in 0..20 {
            let g: Vec<f32> = x.iter().zip(h.iter()).map(|(&x, &h)| h * x).collect();
            opt.step(&mut x, &g);
        }
        let drop0 = 1.0 - x[0];
        let drop1 = 1.0 - x[1];
        assert!((drop0 - drop1).abs() < 0.05, "drops {drop0} vs {drop1}");
    }
}
