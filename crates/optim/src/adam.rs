//! Adam (Kingma & Ba, 2014) with zero-debiased moments.

use crate::{check_lengths, Optimizer};
use yf_tensor::elementwise;

/// The Adam optimizer.
///
/// β1 may be *negative*: the paper's Figure 10 sweeps
/// `β1 ∈ {−0.2, 0.0, 0.3, 0.5, 0.7, 0.9}` under asynchrony, where negative
/// first-moment smoothing acts like negative momentum and compensates for
/// asynchrony-induced momentum. Bias correction `1 − β1^t` remains valid
/// for negative β1.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
    dim: Option<usize>,
}

impl Adam {
    /// Adam with the standard β1 = 0.9, β2 = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit moment coefficients.
    ///
    /// # Panics
    ///
    /// Panics unless `beta1 ∈ (−1, 1)` and `beta2 ∈ [0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(
            (-1.0..1.0).contains(&beta1),
            "adam: beta1 {beta1} out of (-1, 1)"
        );
        assert!(
            (0.0..1.0).contains(&beta2),
            "adam: beta2 {beta2} out of [0, 1)"
        );
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            dim: None,
        }
    }

    /// First-moment coefficient (Adam's "momentum").
    pub fn beta1(&self) -> f32 {
        self.beta1
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        let dim = *self.dim.get_or_insert(params.len());
        check_lengths(dim, params, grads);
        if self.m.is_empty() {
            self.m = vec![0.0; dim];
            self.v = vec![0.0; dim];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t.min(i32::MAX as u64) as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t.min(i32::MAX as u64) as i32);
        elementwise::adam_step(
            params,
            &mut self.m,
            &mut self.v,
            grads,
            self.beta1,
            self.beta2,
            self.lr,
            self.eps,
            bc1,
            bc2,
        );
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_signed_lr() {
        // After bias correction, the very first Adam step is ±lr.
        let mut opt = Adam::new(0.01);
        let mut x = vec![0.0f32, 0.0];
        opt.step(&mut x, &[3.0, -0.5]);
        assert!((x[0] + 0.01).abs() < 1e-5, "{}", x[0]);
        assert!((x[1] - 0.01).abs() < 1e-5, "{}", x[1]);
    }

    #[test]
    fn negative_beta1_is_supported_and_converges() {
        let mut opt = Adam::with_betas(0.05, -0.2, 0.999);
        let mut x = vec![1.0f32];
        for _ in 0..400 {
            let g = vec![x[0]];
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-2, "{}", x[0]);
    }

    #[test]
    #[should_panic(expected = "beta1")]
    fn beta1_out_of_range_panics() {
        Adam::with_betas(0.1, 1.0, 0.999);
    }

    #[test]
    fn per_coordinate_scaling_equalizes() {
        // Adam normalizes per-coordinate magnitude: both coordinates of a
        // badly scaled quadratic move at similar speeds early on.
        let mut opt = Adam::new(0.05);
        let h = [1.0f32, 1000.0];
        let mut x = vec![1.0f32, 1.0];
        for _ in 0..20 {
            let g: Vec<f32> = x.iter().zip(h.iter()).map(|(&x, &h)| h * x).collect();
            opt.step(&mut x, &g);
        }
        let drop0 = 1.0 - x[0];
        let drop1 = 1.0 - x[1];
        assert!((drop0 - drop1).abs() < 0.05, "drops {drop0} vs {drop1}");
    }
}
