//! Generic optimizer-state checkpointing.
//!
//! The fleet grid runner (and any long-running training job) must be able
//! to snapshot an optimizer mid-run and restore it bit-exactly in a fresh
//! process. Each optimizer serializes its *mutable* run state — the
//! learning rate (schedules mutate it), step counters, and the
//! per-coordinate buffers stitched flat via
//! [`crate::ShardedState::flatten`] — into a small versioned text block;
//! construction-time configuration (betas, epsilons, Nesterov flag) is
//! included so a restore can cross-check it was loaded into a compatible
//! instance.
//!
//! The format is the same human-readable `key value` / hex-bits scheme
//! the `yellowfin` crate uses for its tuner checkpoints: floats travel as
//! bit patterns, so save → load round-trips are bitwise exact and a
//! resumed trajectory is indistinguishable from an uninterrupted one.

use std::fmt;

/// Error from [`crate::Optimizer::restore_checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptStateError {
    message: String,
}

impl OptStateError {
    /// Wraps a human-readable description.
    pub fn new(message: impl Into<String>) -> Self {
        OptStateError {
            message: message.into(),
        }
    }
}

impl fmt::Display for OptStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid optimizer checkpoint: {}", self.message)
    }
}

impl std::error::Error for OptStateError {}

/// Format version written into every optimizer checkpoint.
pub const OPT_STATE_VERSION: u32 = 1;

/// Serializes `key value` lines with bit-exact float encoding.
pub struct StateWriter {
    out: String,
}

impl StateWriter {
    /// Starts a checkpoint for optimizer `kind` (the value
    /// [`StateReader::new`] will demand back).
    pub fn new(kind: &str) -> Self {
        let mut w = StateWriter { out: String::new() };
        w.field("kind", kind);
        w.field("version", OPT_STATE_VERSION);
        w
    }

    /// Writes one `key value` line.
    pub fn field(&mut self, key: &str, value: impl fmt::Display) {
        self.out.push_str(key);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// f32 with bit-exact round-trip (hex bits).
    pub fn f32_field(&mut self, key: &str, value: f32) {
        self.field(key, format!("{:08x}", value.to_bits()));
    }

    /// f64 with bit-exact round-trip (hex bits).
    pub fn f64_field(&mut self, key: &str, value: f64) {
        self.field(key, format!("{:016x}", value.to_bits()));
    }

    /// A (possibly empty) f32 vector as comma-joined hex bits.
    pub fn f32_slice(&mut self, key: &str, values: &[f32]) {
        let body: Vec<String> = values
            .iter()
            .map(|v| format!("{:08x}", v.to_bits()))
            .collect();
        self.field(key, body.join(","));
    }

    /// The finished checkpoint text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Parses [`StateWriter`] output back, with typed errors for missing or
/// malformed fields.
#[derive(Debug)]
pub struct StateReader<'a> {
    lines: std::collections::HashMap<&'a str, &'a str>,
}

impl<'a> StateReader<'a> {
    /// Parses `text`, demanding `kind` and a supported version.
    pub fn new(text: &'a str, kind: &str) -> Result<Self, OptStateError> {
        let mut lines = std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            // A key with an empty value (e.g. an empty vector) has no space.
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            lines.insert(key, value);
        }
        let reader = StateReader { lines };
        let got = reader.raw("kind")?;
        if got != kind {
            return Err(OptStateError::new(format!(
                "checkpoint is for optimizer kind {got:?}, not {kind:?}"
            )));
        }
        let version: u32 = reader.parse("version")?;
        if version != OPT_STATE_VERSION {
            return Err(OptStateError::new(format!(
                "unsupported version {version} (expected {OPT_STATE_VERSION})"
            )));
        }
        Ok(reader)
    }

    /// The raw value of `key`.
    pub fn raw(&self, key: &str) -> Result<&'a str, OptStateError> {
        self.lines
            .get(key)
            .copied()
            .ok_or_else(|| OptStateError::new(format!("missing field {key}")))
    }

    /// Parses `key` with `FromStr`.
    pub fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, OptStateError> {
        self.raw(key)?
            .parse::<T>()
            .map_err(|_| OptStateError::new(format!("unparseable field {key}")))
    }

    /// Bit-exact f32.
    pub fn f32(&self, key: &str) -> Result<f32, OptStateError> {
        let bits = u32::from_str_radix(self.raw(key)?, 16)
            .map_err(|_| OptStateError::new(format!("bad f32 bits in {key}")))?;
        Ok(f32::from_bits(bits))
    }

    /// Bit-exact f64.
    pub fn f64(&self, key: &str) -> Result<f64, OptStateError> {
        let bits = u64::from_str_radix(self.raw(key)?, 16)
            .map_err(|_| OptStateError::new(format!("bad f64 bits in {key}")))?;
        Ok(f64::from_bits(bits))
    }

    /// Bit-exact f32 vector (empty value → empty vector).
    pub fn f32_vec(&self, key: &str) -> Result<Vec<f32>, OptStateError> {
        let raw = self.raw(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|part| {
                u32::from_str_radix(part, 16)
                    .map(f32::from_bits)
                    .map_err(|_| OptStateError::new(format!("bad f32 list in {key}")))
            })
            .collect()
    }

    /// An optional dimension: `none` or a count.
    pub fn dim(&self, key: &str) -> Result<Option<usize>, OptStateError> {
        match self.raw(key)? {
            "none" => Ok(None),
            d => d
                .parse()
                .map(Some)
                .map_err(|_| OptStateError::new(format!("bad dim in {key}"))),
        }
    }
}

/// Writes an optional dimension (the lazily-bound parameter count every
/// optimizer tracks).
pub fn write_dim(w: &mut StateWriter, key: &str, dim: Option<usize>) {
    match dim {
        Some(d) => w.field(key, d),
        None => w.field(key, "none"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_fields_bit_exactly() {
        let mut w = StateWriter::new("test");
        w.f32_field("lr", 0.1);
        w.f64_field("beta", 0.999);
        w.f32_slice("buf", &[1.5, -2.25, f32::MIN_POSITIVE]);
        w.f32_slice("empty", &[]);
        w.field("t", 42u64);
        write_dim(&mut w, "dim", Some(7));
        write_dim(&mut w, "nodim", None);
        let text = w.finish();

        let r = StateReader::new(&text, "test").expect("valid");
        assert_eq!(r.f32("lr").unwrap().to_bits(), 0.1f32.to_bits());
        assert_eq!(r.f64("beta").unwrap().to_bits(), 0.999f64.to_bits());
        assert_eq!(
            r.f32_vec("buf").unwrap(),
            vec![1.5, -2.25, f32::MIN_POSITIVE]
        );
        assert!(r.f32_vec("empty").unwrap().is_empty());
        assert_eq!(r.parse::<u64>("t").unwrap(), 42);
        assert_eq!(r.dim("dim").unwrap(), Some(7));
        assert_eq!(r.dim("nodim").unwrap(), None);
    }

    #[test]
    fn rejects_wrong_kind_version_and_garbage() {
        let text = StateWriter::new("sgd").finish();
        let err = StateReader::new(&text, "adam").unwrap_err();
        assert!(err.to_string().contains("kind"));
        let bumped = text.replace("version 1", "version 99");
        assert!(StateReader::new(&bumped, "sgd").is_err());
        assert!(StateReader::new("", "sgd").is_err());
        let r = StateReader::new(&text, "sgd").unwrap();
        assert!(r.raw("absent").is_err());
        assert!(r.f32("kind").is_err(), "non-hex bits must be rejected");
    }
}
