//! Named parameter groups with per-group hyperparameter overrides.
//!
//! A [`ParamGroups`] describes how a model's flat parameter vector is
//! laid out — one contiguous [`ParamGroup`] per named parameter tensor,
//! in binding order — together with the shard plan used to apply updates
//! and optional per-group overrides (a learning-rate scale, a momentum
//! override). It is typically built from a `SupervisedModel`'s parameter
//! list via `yf_nn::param_groups` and handed to
//! [`step_grouped`](crate::sharded::step_grouped) or
//! `yf_experiments::trainer::RunConfig`.
//!
//! Overrides adjust the [`Hyper`] produced by the optimizer's single
//! global `observe` — the measurement stays whole-model (the paper's
//! global curvature/variance statistics), only the *applied* values vary
//! per group, which is exactly the split the closed-loop analysis needs.

use crate::Hyper;

/// One named contiguous region of the flat parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGroup {
    /// Diagnostic name (e.g. `"stage1.block0.conv1.w"`).
    pub name: String,
    /// First flat coordinate of this group.
    pub offset: usize,
    /// Number of coordinates.
    pub len: usize,
    /// Multiplier on the tuned learning rate (1.0 = no override).
    pub lr_scale: f32,
    /// If set, replaces the tuned momentum for this group.
    pub momentum: Option<f32>,
}

impl ParamGroup {
    /// Applies this group's overrides to a base [`Hyper`].
    pub fn adjust(&self, base: Hyper) -> Hyper {
        Hyper {
            lr: base.lr * self.lr_scale,
            momentum: self.momentum.unwrap_or(base.momentum),
            grad_scale: base.grad_scale,
        }
    }

    /// Whether any override deviates from the tuned values.
    pub fn has_override(&self) -> bool {
        self.lr_scale != 1.0 || self.momentum.is_some()
    }
}

/// The layout of a flat parameter vector as named groups, plus the shard
/// plan for parallel application.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGroups {
    groups: Vec<ParamGroup>,
    total: usize,
    /// Shards per group for parallel apply; 0 = auto (thread count when
    /// the vector is large enough to be worth splitting).
    shards: usize,
}

impl ParamGroups {
    /// One anonymous group covering the whole vector.
    pub fn single(total: usize) -> Self {
        ParamGroups {
            groups: vec![ParamGroup {
                name: "params".into(),
                offset: 0,
                len: total,
                lr_scale: 1.0,
                momentum: None,
            }],
            total,
            shards: 0,
        }
    }

    /// Builds groups from `(name, len)` pairs in binding order.
    pub fn from_named<'a>(named: impl IntoIterator<Item = (&'a str, usize)>) -> Self {
        let mut groups = Vec::new();
        let mut offset = 0;
        for (name, len) in named {
            groups.push(ParamGroup {
                name: name.to_string(),
                offset,
                len,
                lr_scale: 1.0,
                momentum: None,
            });
            offset += len;
        }
        ParamGroups {
            groups,
            total: offset,
            shards: 0,
        }
    }

    /// Total coordinates across all groups.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The groups, in flat-vector order.
    pub fn groups(&self) -> &[ParamGroup] {
        &self.groups
    }

    /// Sets the shard plan: each group is applied as up to `shards`
    /// parallel slices. 0 restores the automatic choice.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The shard count the drivers will actually use.
    pub fn resolved_shards(&self) -> usize {
        crate::sharded::auto_shards(self.shards, self.total)
    }

    /// Scales the learning rate of every group whose name contains
    /// `pattern`; returns how many groups matched.
    pub fn scale_lr(&mut self, pattern: &str, factor: f32) -> usize {
        let mut n = 0;
        for g in &mut self.groups {
            if g.name.contains(pattern) {
                g.lr_scale *= factor;
                n += 1;
            }
        }
        n
    }

    /// Overrides the momentum of every group whose name contains
    /// `pattern`; returns how many groups matched.
    pub fn override_momentum(&mut self, pattern: &str, momentum: f32) -> usize {
        let mut n = 0;
        for g in &mut self.groups {
            if g.name.contains(pattern) {
                g.momentum = Some(momentum);
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_named_lays_out_contiguously() {
        let g = ParamGroups::from_named([("w", 6), ("b", 2), ("head.w", 4)]);
        assert_eq!(g.total(), 12);
        assert_eq!(g.groups()[1].offset, 6);
        assert_eq!(g.groups()[2].offset, 8);
    }

    #[test]
    fn overrides_adjust_hyper() {
        let mut g = ParamGroups::from_named([("conv.w", 6), ("conv.b", 2)]);
        assert_eq!(g.scale_lr(".b", 0.5), 1);
        assert_eq!(g.override_momentum("conv", 0.0), 2);
        let base = Hyper {
            lr: 0.2,
            momentum: 0.9,
            grad_scale: 1.0,
        };
        let adjusted = g.groups()[1].adjust(base);
        assert!((adjusted.lr - 0.1).abs() < 1e-7);
        assert_eq!(adjusted.momentum, 0.0);
        assert!(g.groups()[0].has_override());
    }

    #[test]
    fn auto_sharding_is_single_for_small_vectors() {
        assert_eq!(ParamGroups::single(100).resolved_shards(), 1);
    }
}
