//! Gradient clipping utilities.
//!
//! The paper's Table 1 baseline uses a *manually chosen* global-norm
//! threshold (0.1 for the seq2seq model); YellowFin's adaptive variant
//! (Appendix F) derives the threshold from its own curvature estimate.
//! In the sharded measure pipeline both paths derive the norm from the
//! per-shard partial reductions and apply the clip factor via
//! [`clip_scale`] / [`crate::Hyper::grad_scale`] — nothing is scaled in
//! place. [`clip_by_global_norm`] remains as the plain in-place
//! primitive for code outside the optimizer step (and as the reference
//! the property tests pin the scale-folding behavior against).

/// Euclidean norm of a flat gradient, accumulated in `f64` through the
/// deterministic blocked reduction ([`yf_tensor::reduce::sumsq`]) — the
/// same kernel the sharded measure phase uses, so a norm computed here
/// matches one assembled from per-shard partial sums bit for bit.
pub fn global_norm(grads: &[f32]) -> f32 {
    yf_tensor::reduce::sumsq(grads).sqrt() as f32
}

/// Scales `grads` in place so its global norm is at most `threshold`.
/// Returns the norm measured *before* clipping.
///
/// A non-positive or non-finite threshold disables clipping (the norm is
/// still returned), which lets callers thread an "off" setting through
/// unconditionally.
pub fn clip_by_global_norm(grads: &mut [f32], threshold: f32) -> f32 {
    let norm = global_norm(grads);
    if threshold > 0.0 && threshold.is_finite() && norm > threshold {
        let scale = threshold / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

/// The scale factor [`clip_by_global_norm`] would apply for a gradient of
/// norm `norm` under `threshold` (1.0 when no clipping occurs).
pub fn clip_scale(norm: f32, threshold: f32) -> f32 {
    if threshold > 0.0 && threshold.is_finite() && norm > threshold {
        threshold / norm
    } else {
        1.0
    }
}

/// Clipping middleware: scales the gradient to a fixed global-norm
/// threshold before delegating — the "manually set gradient norm
/// threshold" baseline of the paper's Table 1.
///
/// Fully copy-free in the sharded measure pipeline: `observe_shard`
/// contributes per-block Σg² partial sums (with the wrapped optimizer's
/// partial nested inside), `combine` assembles the norm from them with
/// the deterministic tree reduction and threads the clip factor into the
/// inner `combine` as a gradient *scale* — the wrapped optimizer measures
/// on scaled values analytically, and the apply phase folds the same
/// factor into [`crate::Hyper::grad_scale`], so no scaled gradient is ever
/// materialized anywhere in the step.
#[derive(Debug, Clone)]
pub struct Clipped<O> {
    inner: O,
    threshold: f32,
}

impl<O: crate::Optimizer> Clipped<O> {
    /// Wraps `inner`, clipping gradients to `threshold`.
    pub fn new(inner: O, threshold: f32) -> Self {
        Clipped { inner, threshold }
    }

    /// The wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: crate::Optimizer> crate::Optimizer for Clipped<O> {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> crate::Hyper {
        self.combine(params, grads, Vec::new(), 1.0)
    }

    fn observe_shard(
        &self,
        shard: crate::ParamShard,
        params: &[f32],
        grads: &[f32],
    ) -> crate::StatsPartial {
        if self.inner.needs_observe_partials() {
            // `StatsPartial::sums` is contractually the raw-gradient
            // per-block Σg², so a measuring inner optimizer's partial
            // already carries exactly the sums this wrapper needs for the
            // clip norm — share them instead of sweeping the slice a
            // second time. (Fallback: an impl that opted in but kept the
            // default empty partial still gets a correct norm.)
            let inner = self.inner.observe_shard(shard, params, grads);
            let shared = inner.sums.len() == yf_tensor::reduce::blocks_for(grads.len());
            let mut own = if shared {
                crate::StatsPartial {
                    first_block: inner.first_block,
                    sums: inner.sums.clone(),
                    inner: None,
                }
            } else {
                crate::StatsPartial::sumsq(shard.offset, grads)
            };
            own.inner = Some(Box::new(inner));
            own
        } else {
            crate::StatsPartial::sumsq(shard.offset, grads)
        }
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        partials: Vec<crate::StatsPartial>,
        grad_scale: f32,
    ) -> crate::Hyper {
        let mut partials = partials;
        if partials.is_empty() && !grads.is_empty() {
            // One-phase path: compute the sums once here and hand a copy
            // down as the inner partial, so a measuring inner optimizer
            // doesn't sweep the gradient again.
            let own = crate::StatsPartial::sumsq(0, grads);
            let inner = self.inner.needs_observe_partials().then(|| own.clone());
            partials.push(own.with_inner(inner));
        }
        let sumsq = crate::StatsPartial::merge_sums(&partials, grads.len());
        // The norm this wrapper sees is the norm of the gradient already
        // scaled by every enclosing wrapper.
        let norm = (f64::from(grad_scale) * sumsq.sqrt()) as f32;
        let scale = clip_scale(norm, self.threshold);
        let inner_partials = crate::StatsPartial::take_inner(&mut partials);
        let hyper = self
            .inner
            .combine(params, grads, inner_partials, grad_scale * scale);
        crate::Hyper {
            grad_scale: hyper.grad_scale * scale,
            ..hyper
        }
    }

    fn needs_observe_partials(&self) -> bool {
        true
    }

    fn step_shard(
        &self,
        shard: crate::ParamShard,
        params: &mut [f32],
        grads: &[f32],
        hyper: crate::Hyper,
    ) {
        self.inner.step_shard(shard, params, grads, hyper);
    }

    fn learning_rate(&self) -> f32 {
        self.inner.learning_rate()
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.inner.set_learning_rate(lr);
    }

    fn is_self_tuning(&self) -> bool {
        self.inner.is_self_tuning()
    }

    // The threshold is construction-time configuration; all mutable run
    // state lives in the wrapped optimizer, so checkpoints delegate.
    fn checkpoint_state(&self) -> Option<String> {
        self.inner.checkpoint_state()
    }

    fn restore_checkpoint(&mut self, text: &str) -> Result<(), crate::checkpoint::OptStateError> {
        self.inner.restore_checkpoint(text)
    }

    fn name(&self) -> &'static str {
        "clipped"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_matches_hand_value() {
        assert!((global_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn clips_only_above_threshold() {
        let mut g = vec![3.0f32, 4.0];
        let norm = clip_by_global_norm(&mut g, 10.0);
        assert_eq!(norm, 5.0);
        assert_eq!(g, vec![3.0, 4.0], "below threshold: untouched");

        let norm = clip_by_global_norm(&mut g, 1.0);
        assert_eq!(norm, 5.0);
        assert!((global_norm(&g) - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((g[1] / g[0] - 4.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn nonpositive_threshold_disables() {
        let mut g = vec![30.0f32, 40.0];
        clip_by_global_norm(&mut g, 0.0);
        assert_eq!(g, vec![30.0, 40.0]);
        clip_by_global_norm(&mut g, f32::INFINITY);
        assert_eq!(g, vec![30.0, 40.0]);
    }

    #[test]
    fn clipped_adapter_limits_update_size() {
        use crate::{Optimizer, Sgd};
        let mut plain = Sgd::new(1.0);
        let mut clipped = Clipped::new(Sgd::new(1.0), 1.0);
        let mut xp = vec![0.0f32, 0.0];
        let mut xc = vec![0.0f32, 0.0];
        let huge = vec![30.0f32, 40.0];
        plain.step(&mut xp, &huge);
        clipped.step(&mut xc, &huge);
        assert_eq!(xp, vec![-30.0, -40.0]);
        let step_norm = global_norm(&xc);
        assert!((step_norm - 1.0).abs() < 1e-6, "clipped step {step_norm}");
    }

    #[test]
    fn clipped_adapter_passes_small_gradients_through() {
        use crate::{Optimizer, Sgd};
        let mut clipped = Clipped::new(Sgd::new(0.5), 10.0);
        let mut x = vec![1.0f32];
        clipped.step(&mut x, &[1.0]);
        assert!((x[0] - 0.5).abs() < 1e-6);
    }
}
