//! Gradient clipping utilities.
//!
//! The paper's Table 1 baseline uses a *manually chosen* global-norm
//! threshold (0.1 for the seq2seq model); YellowFin's adaptive variant
//! (Appendix F) derives the threshold from its own curvature estimate.
//! Both paths call [`clip_by_global_norm`].

/// Euclidean norm of a flat gradient, accumulated in `f64`.
pub fn global_norm(grads: &[f32]) -> f32 {
    grads
        .iter()
        .map(|&g| f64::from(g) * f64::from(g))
        .sum::<f64>()
        .sqrt() as f32
}

/// Scales `grads` in place so its global norm is at most `threshold`.
/// Returns the norm measured *before* clipping.
///
/// A non-positive or non-finite threshold disables clipping (the norm is
/// still returned), which lets callers thread an "off" setting through
/// unconditionally.
pub fn clip_by_global_norm(grads: &mut [f32], threshold: f32) -> f32 {
    let norm = global_norm(grads);
    if threshold > 0.0 && threshold.is_finite() && norm > threshold {
        let scale = threshold / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

/// The scale factor [`clip_by_global_norm`] would apply for a gradient of
/// norm `norm` under `threshold` (1.0 when no clipping occurs).
pub fn clip_scale(norm: f32, threshold: f32) -> f32 {
    if threshold > 0.0 && threshold.is_finite() && norm > threshold {
        threshold / norm
    } else {
        1.0
    }
}

/// Clipping middleware: scales the gradient to a fixed global-norm
/// threshold before delegating — the "manually set gradient norm
/// threshold" baseline of the paper's Table 1.
///
/// In the two-phase API the measurement (`observe`) sees the *clipped*
/// gradient, while the apply phase folds the clip factor into
/// [`Hyper::grad_scale`] and passes the raw gradient straight through to
/// the inner `step_shard` — no per-shard gradient copies, so clipping
/// composes with sharded and grouped application for free.
#[derive(Debug, Clone)]
pub struct Clipped<O> {
    inner: O,
    threshold: f32,
    buf: Vec<f32>,
}

impl<O: crate::Optimizer> Clipped<O> {
    /// Wraps `inner`, clipping gradients to `threshold`.
    pub fn new(inner: O, threshold: f32) -> Self {
        Clipped {
            inner,
            threshold,
            buf: Vec::new(),
        }
    }

    /// The wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: crate::Optimizer> crate::Optimizer for Clipped<O> {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> crate::Hyper {
        self.buf.clear();
        self.buf.extend_from_slice(grads);
        let norm = clip_by_global_norm(&mut self.buf, self.threshold);
        let scale = clip_scale(norm, self.threshold);
        let hyper = self.inner.observe(params, &self.buf);
        crate::Hyper {
            grad_scale: hyper.grad_scale * scale,
            ..hyper
        }
    }

    fn step_shard(
        &self,
        shard: crate::ParamShard,
        params: &mut [f32],
        grads: &[f32],
        hyper: crate::Hyper,
    ) {
        self.inner.step_shard(shard, params, grads, hyper);
    }

    fn learning_rate(&self) -> f32 {
        self.inner.learning_rate()
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.inner.set_learning_rate(lr);
    }

    fn is_self_tuning(&self) -> bool {
        self.inner.is_self_tuning()
    }

    fn name(&self) -> &'static str {
        "clipped"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_matches_hand_value() {
        assert!((global_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn clips_only_above_threshold() {
        let mut g = vec![3.0f32, 4.0];
        let norm = clip_by_global_norm(&mut g, 10.0);
        assert_eq!(norm, 5.0);
        assert_eq!(g, vec![3.0, 4.0], "below threshold: untouched");

        let norm = clip_by_global_norm(&mut g, 1.0);
        assert_eq!(norm, 5.0);
        assert!((global_norm(&g) - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((g[1] / g[0] - 4.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn nonpositive_threshold_disables() {
        let mut g = vec![30.0f32, 40.0];
        clip_by_global_norm(&mut g, 0.0);
        assert_eq!(g, vec![30.0, 40.0]);
        clip_by_global_norm(&mut g, f32::INFINITY);
        assert_eq!(g, vec![30.0, 40.0]);
    }

    #[test]
    fn clipped_adapter_limits_update_size() {
        use crate::{Optimizer, Sgd};
        let mut plain = Sgd::new(1.0);
        let mut clipped = Clipped::new(Sgd::new(1.0), 1.0);
        let mut xp = vec![0.0f32, 0.0];
        let mut xc = vec![0.0f32, 0.0];
        let huge = vec![30.0f32, 40.0];
        plain.step(&mut xp, &huge);
        clipped.step(&mut xc, &huge);
        assert_eq!(xp, vec![-30.0, -40.0]);
        let step_norm = global_norm(&xc);
        assert!((step_norm - 1.0).abs() < 1e-6, "clipped step {step_norm}");
    }

    #[test]
    fn clipped_adapter_passes_small_gradients_through() {
        use crate::{Optimizer, Sgd};
        let mut clipped = Clipped::new(Sgd::new(0.5), 10.0);
        let mut x = vec![1.0f32];
        clipped.step(&mut x, &[1.0]);
        assert!((x[0] - 0.5).abs() < 1e-6);
    }
}
