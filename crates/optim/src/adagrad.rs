//! AdaGrad (Duchi, Hazan & Singer, 2011).

use crate::{check_lengths, Optimizer};
use yf_tensor::elementwise;

/// AdaGrad: per-coordinate learning rates from accumulated squared
/// gradients. One of the baselines the paper compares against on the WSJ
/// constituency parsing task (Figure 5, right).
#[derive(Debug, Clone)]
pub struct AdaGrad {
    lr: f32,
    eps: f32,
    accum: Vec<f32>,
    dim: Option<usize>,
}

impl AdaGrad {
    /// AdaGrad with accumulator floor ε = 1e-10.
    pub fn new(lr: f32) -> Self {
        AdaGrad {
            lr,
            eps: 1e-10,
            accum: Vec::new(),
            dim: None,
        }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        let dim = *self.dim.get_or_insert(params.len());
        check_lengths(dim, params, grads);
        if self.accum.is_empty() {
            self.accum = vec![0.0; dim];
        }
        elementwise::adaptive_sq_step(params, &mut self.accum, grads, 1.0, 1.0, self.lr, self.eps);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "adagrad"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_signed_lr() {
        let mut opt = AdaGrad::new(0.1);
        let mut x = vec![0.0f32];
        opt.step(&mut x, &[5.0]);
        assert!((x[0] + 0.1).abs() < 1e-5);
    }

    #[test]
    fn step_sizes_shrink_over_time() {
        let mut opt = AdaGrad::new(0.1);
        let mut x = vec![0.0f32];
        opt.step(&mut x, &[1.0]);
        let first = x[0].abs();
        let before = x[0];
        opt.step(&mut x, &[1.0]);
        let second = (x[0] - before).abs();
        assert!(second < first, "second step {second} >= first {first}");
    }
}
