//! AdaGrad (Duchi, Hazan & Singer, 2011).

use crate::checkpoint::{write_dim, OptStateError, StateReader, StateWriter};
use crate::{check_lengths, Hyper, Optimizer, ParamShard, ShardedState};
use yf_tensor::elementwise;

/// AdaGrad: per-coordinate learning rates from accumulated squared
/// gradients. One of the baselines the paper compares against on the WSJ
/// constituency parsing task (Figure 5, right).
#[derive(Debug, Clone)]
pub struct AdaGrad {
    lr: f32,
    eps: f32,
    state: ShardedState,
    dim: Option<usize>,
}

impl AdaGrad {
    /// AdaGrad with accumulator floor ε = 1e-10.
    pub fn new(lr: f32) -> Self {
        AdaGrad {
            lr,
            eps: 1e-10,
            state: ShardedState::new(1),
            dim: None,
        }
    }
}

impl Optimizer for AdaGrad {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> Hyper {
        let dim = *self.dim.get_or_insert(params.len());
        check_lengths(dim, params, grads);
        Hyper::new(self.lr, 0.0)
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        _partials: Vec<crate::StatsPartial>,
        _grad_scale: f32,
    ) -> Hyper {
        // Measurement ignores gradient values: no scaled copy needed.
        self.observe(params, grads)
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        shard.validate(params, grads);
        self.state.with(shard, params.len(), |bufs| {
            let accum = &mut bufs[0];
            if accum.is_empty() {
                accum.resize(params.len(), 0.0);
            }
            elementwise::adaptive_sq_step(
                params,
                accum,
                grads,
                1.0,
                1.0,
                hyper.lr,
                self.eps,
                hyper.grad_scale,
            );
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn checkpoint_state(&self) -> Option<String> {
        let mut w = StateWriter::new("adagrad");
        w.f32_field("lr", self.lr);
        w.f32_field("eps", self.eps);
        write_dim(&mut w, "dim", self.dim);
        w.f32_slice("accum", &self.state.flatten(0));
        Some(w.finish())
    }

    fn restore_checkpoint(&mut self, text: &str) -> Result<(), OptStateError> {
        let r = StateReader::new(text, "adagrad")?;
        self.lr = r.f32("lr")?;
        self.eps = r.f32("eps")?;
        self.dim = r.dim("dim")?;
        let accum = r.f32_vec("accum")?;
        self.state = ShardedState::new(1);
        if !accum.is_empty() {
            self.state.load_full(vec![accum]);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "adagrad"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_signed_lr() {
        let mut opt = AdaGrad::new(0.1);
        let mut x = vec![0.0f32];
        opt.step(&mut x, &[5.0]);
        assert!((x[0] + 0.1).abs() < 1e-5);
    }

    #[test]
    fn step_sizes_shrink_over_time() {
        let mut opt = AdaGrad::new(0.1);
        let mut x = vec![0.0f32];
        opt.step(&mut x, &[1.0]);
        let first = x[0].abs();
        let before = x[0];
        opt.step(&mut x, &[1.0]);
        let second = (x[0] - before).abs();
        assert!(second < first, "second step {second} >= first {first}");
    }
}
