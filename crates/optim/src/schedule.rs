//! Learning-rate schedules used by the paper's experiment protocols.
//!
//! Appendix I: the TinyShakespeare LSTM decays the learning rate by 0.97
//! every epoch; the WSJ LSTM decays by 0.9 every epoch after epoch 14.
//! Schedules compose with any [`crate::Optimizer`] either directly via
//! [`Schedule::apply`] or as [`Scheduled`] middleware.
//!
//! Schedules and self-tuning optimizers do not mix: overriding the
//! YellowFin family's learning rate would silently fight the tuner (every
//! epoch boundary would rescale the auto-tuned rate through
//! `set_learning_rate`, distorting `lr_factor`). Both [`Schedule::apply`]
//! and [`Scheduled`] therefore *no-op* on optimizers whose
//! [`crate::Optimizer::is_self_tuning`] returns true, emitting a debug
//! log so the skipped decay is visible in development builds.

use crate::Optimizer;

/// A multiplicative learning-rate decay schedule on epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// No decay.
    Constant,
    /// Multiply the learning rate by `factor` at the end of every epoch.
    EveryEpoch {
        /// Per-epoch multiplier in `(0, 1]`.
        factor: f32,
    },
    /// Multiply by `factor` at the end of every epoch from `start_epoch`
    /// onward (epochs are 0-based).
    AfterEpoch {
        /// Per-epoch multiplier in `(0, 1]`.
        factor: f32,
        /// First epoch (0-based) at which decay applies.
        start_epoch: usize,
    },
}

impl Schedule {
    /// The cumulative multiplier in effect during `epoch`.
    pub fn multiplier(&self, epoch: usize) -> f32 {
        match *self {
            Schedule::Constant => 1.0,
            Schedule::EveryEpoch { factor } => factor.powi(epoch as i32),
            Schedule::AfterEpoch {
                factor,
                start_epoch,
            } => factor.powi(epoch.saturating_sub(start_epoch) as i32),
        }
    }

    /// Sets `opt`'s learning rate to `base_lr * multiplier(epoch)` —
    /// unless `opt` tunes its own learning rate, in which case this is a
    /// no-op (with a debug log): schedules must never fight the tuner.
    pub fn apply(&self, opt: &mut dyn Optimizer, base_lr: f32, epoch: usize) {
        if opt.is_self_tuning() {
            #[cfg(debug_assertions)]
            eprintln!(
                "schedule: skipping epoch-{epoch} decay on self-tuning optimizer '{}'",
                opt.name()
            );
            return;
        }
        opt.set_learning_rate(base_lr * self.multiplier(epoch));
    }
}

/// Schedule middleware: owns the inner optimizer and applies the decay on
/// [`Scheduled::set_epoch`], composing with the two-phase API (and with
/// other middleware such as [`crate::clip::Clipped`]) instead of poking
/// `set_learning_rate` on a trait object from the training loop.
#[derive(Debug, Clone)]
pub struct Scheduled<O> {
    inner: O,
    schedule: Schedule,
    base_lr: f32,
}

impl<O: Optimizer> Scheduled<O> {
    /// Wraps `inner`; its current learning rate becomes the schedule's
    /// base rate.
    pub fn new(inner: O, schedule: Schedule) -> Self {
        let base_lr = inner.learning_rate();
        Scheduled {
            inner,
            schedule,
            base_lr,
        }
    }

    /// Moves the schedule to `epoch`, updating the inner learning rate
    /// (no-op with a debug log on self-tuning inner optimizers).
    pub fn set_epoch(&mut self, epoch: usize) {
        self.schedule.apply(&mut self.inner, self.base_lr, epoch);
    }

    /// The wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: Optimizer> Optimizer for Scheduled<O> {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> crate::Hyper {
        self.inner.observe(params, grads)
    }

    fn observe_shard(
        &self,
        shard: crate::ParamShard,
        params: &[f32],
        grads: &[f32],
    ) -> crate::StatsPartial {
        self.inner.observe_shard(shard, params, grads)
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        partials: Vec<crate::StatsPartial>,
        grad_scale: f32,
    ) -> crate::Hyper {
        self.inner.combine(params, grads, partials, grad_scale)
    }

    fn needs_observe_partials(&self) -> bool {
        self.inner.needs_observe_partials()
    }

    fn step_shard(
        &self,
        shard: crate::ParamShard,
        params: &mut [f32],
        grads: &[f32],
        hyper: crate::Hyper,
    ) {
        self.inner.step_shard(shard, params, grads, hyper);
    }

    fn learning_rate(&self) -> f32 {
        self.inner.learning_rate()
    }

    fn set_learning_rate(&mut self, lr: f32) {
        // External overrides re-base the schedule.
        self.base_lr = lr;
        self.inner.set_learning_rate(lr);
    }

    fn is_self_tuning(&self) -> bool {
        self.inner.is_self_tuning()
    }

    // The schedule shape is construction-time configuration and the
    // decayed learning rate is the inner optimizer's `lr` field, so
    // checkpoints delegate; `base_lr` is re-derived by the constructor.
    fn checkpoint_state(&self) -> Option<String> {
        self.inner.checkpoint_state()
    }

    fn restore_checkpoint(&mut self, text: &str) -> Result<(), crate::checkpoint::OptStateError> {
        self.inner.restore_checkpoint(text)
    }

    fn name(&self) -> &'static str {
        "scheduled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimizer, Sgd};

    #[test]
    fn constant_never_decays() {
        assert_eq!(Schedule::Constant.multiplier(100), 1.0);
    }

    #[test]
    fn every_epoch_compounds() {
        let s = Schedule::EveryEpoch { factor: 0.97 };
        assert!((s.multiplier(0) - 1.0).abs() < 1e-6);
        assert!((s.multiplier(2) - 0.97 * 0.97).abs() < 1e-6);
    }

    #[test]
    fn after_epoch_waits() {
        let s = Schedule::AfterEpoch {
            factor: 0.9,
            start_epoch: 14,
        };
        assert_eq!(s.multiplier(10), 1.0);
        assert_eq!(s.multiplier(14), 1.0);
        assert!((s.multiplier(16) - 0.81).abs() < 1e-6);
    }

    #[test]
    fn apply_updates_optimizer() {
        let mut opt = Sgd::new(1.0);
        let s = Schedule::EveryEpoch { factor: 0.5 };
        s.apply(&mut opt, 1.0, 3);
        assert!((opt.learning_rate() - 0.125).abs() < 1e-6);
    }

    #[test]
    fn apply_noops_on_self_tuning_optimizers() {
        struct SelfTuned(f32);
        impl Optimizer for SelfTuned {
            fn observe(&mut self, _: &[f32], _: &[f32]) -> crate::Hyper {
                crate::Hyper::new(self.0, 0.0)
            }
            fn step_shard(&self, _: crate::ParamShard, _: &mut [f32], _: &[f32], _: crate::Hyper) {}
            fn learning_rate(&self) -> f32 {
                self.0
            }
            fn set_learning_rate(&mut self, lr: f32) {
                self.0 = lr;
            }
            fn is_self_tuning(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "self-tuned"
            }
        }
        let mut opt = SelfTuned(0.7);
        Schedule::EveryEpoch { factor: 0.5 }.apply(&mut opt, 0.7, 4);
        assert_eq!(opt.learning_rate(), 0.7, "tuner's rate must be untouched");
    }

    #[test]
    fn scheduled_middleware_decays_on_epoch() {
        let mut opt = Scheduled::new(Sgd::new(1.0), Schedule::EveryEpoch { factor: 0.5 });
        opt.set_epoch(2);
        assert!((opt.learning_rate() - 0.25).abs() < 1e-6);
        let mut x = vec![1.0f32];
        opt.step(&mut x, &[1.0]);
        assert!((x[0] - 0.75).abs() < 1e-6, "decayed rate used: {}", x[0]);
    }
}
