//! Learning-rate schedules used by the paper's experiment protocols.
//!
//! Appendix I: the TinyShakespeare LSTM decays the learning rate by 0.97
//! every epoch; the WSJ LSTM decays by 0.9 every epoch after epoch 14.
//! These compose with any [`crate::Optimizer`] via
//! [`Schedule::apply`].

use crate::Optimizer;

/// A multiplicative learning-rate decay schedule on epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// No decay.
    Constant,
    /// Multiply the learning rate by `factor` at the end of every epoch.
    EveryEpoch {
        /// Per-epoch multiplier in `(0, 1]`.
        factor: f32,
    },
    /// Multiply by `factor` at the end of every epoch from `start_epoch`
    /// onward (epochs are 0-based).
    AfterEpoch {
        /// Per-epoch multiplier in `(0, 1]`.
        factor: f32,
        /// First epoch (0-based) at which decay applies.
        start_epoch: usize,
    },
}

impl Schedule {
    /// The cumulative multiplier in effect during `epoch`.
    pub fn multiplier(&self, epoch: usize) -> f32 {
        match *self {
            Schedule::Constant => 1.0,
            Schedule::EveryEpoch { factor } => factor.powi(epoch as i32),
            Schedule::AfterEpoch {
                factor,
                start_epoch,
            } => factor.powi(epoch.saturating_sub(start_epoch) as i32),
        }
    }

    /// Sets `opt`'s learning rate to `base_lr * multiplier(epoch)`.
    pub fn apply(&self, opt: &mut dyn Optimizer, base_lr: f32, epoch: usize) {
        opt.set_learning_rate(base_lr * self.multiplier(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;

    #[test]
    fn constant_never_decays() {
        assert_eq!(Schedule::Constant.multiplier(100), 1.0);
    }

    #[test]
    fn every_epoch_compounds() {
        let s = Schedule::EveryEpoch { factor: 0.97 };
        assert!((s.multiplier(0) - 1.0).abs() < 1e-6);
        assert!((s.multiplier(2) - 0.97 * 0.97).abs() < 1e-6);
    }

    #[test]
    fn after_epoch_waits() {
        let s = Schedule::AfterEpoch {
            factor: 0.9,
            start_epoch: 14,
        };
        assert_eq!(s.multiplier(10), 1.0);
        assert_eq!(s.multiplier(14), 1.0);
        assert!((s.multiplier(16) - 0.81).abs() < 1e-6);
    }

    #[test]
    fn apply_updates_optimizer() {
        let mut opt = Sgd::new(1.0);
        let s = Schedule::EveryEpoch { factor: 0.5 };
        s.apply(&mut opt, 1.0, 3);
        assert!((opt.learning_rate() - 0.125).abs() < 1e-6);
    }
}
