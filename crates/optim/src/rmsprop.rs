//! RMSProp (Tieleman & Hinton, 2012).

use crate::checkpoint::{write_dim, OptStateError, StateReader, StateWriter};
use crate::{check_lengths, Hyper, Optimizer, ParamShard, ShardedState};
use yf_tensor::elementwise;

/// RMSProp: per-coordinate learning rates from an exponential moving
/// average of squared gradients.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    state: ShardedState,
    dim: Option<usize>,
}

impl RmsProp {
    /// RMSProp with the customary decay 0.9 and ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        RmsProp::with_decay(lr, 0.9)
    }

    /// RMSProp with explicit squared-gradient decay.
    ///
    /// # Panics
    ///
    /// Panics unless `decay ∈ [0, 1)`.
    pub fn with_decay(lr: f32, decay: f32) -> Self {
        assert!((0.0..1.0).contains(&decay), "rmsprop: decay {decay}");
        RmsProp {
            lr,
            decay,
            eps: 1e-8,
            state: ShardedState::new(1),
            dim: None,
        }
    }
}

impl Optimizer for RmsProp {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> Hyper {
        let dim = *self.dim.get_or_insert(params.len());
        check_lengths(dim, params, grads);
        Hyper::new(self.lr, 0.0)
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        _partials: Vec<crate::StatsPartial>,
        _grad_scale: f32,
    ) -> Hyper {
        // Measurement ignores gradient values: no scaled copy needed.
        self.observe(params, grads)
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        shard.validate(params, grads);
        self.state.with(shard, params.len(), |bufs| {
            let ms = &mut bufs[0];
            if ms.is_empty() {
                ms.resize(params.len(), 0.0);
            }
            elementwise::adaptive_sq_step(
                params,
                ms,
                grads,
                self.decay,
                1.0 - self.decay,
                hyper.lr,
                self.eps,
                hyper.grad_scale,
            );
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn checkpoint_state(&self) -> Option<String> {
        let mut w = StateWriter::new("rmsprop");
        w.f32_field("lr", self.lr);
        w.f32_field("decay", self.decay);
        w.f32_field("eps", self.eps);
        write_dim(&mut w, "dim", self.dim);
        w.f32_slice("ms", &self.state.flatten(0));
        Some(w.finish())
    }

    fn restore_checkpoint(&mut self, text: &str) -> Result<(), OptStateError> {
        let r = StateReader::new(text, "rmsprop")?;
        self.lr = r.f32("lr")?;
        self.decay = r.f32("decay")?;
        self.eps = r.f32("eps")?;
        self.dim = r.dim("dim")?;
        let ms = r.f32_vec("ms")?;
        self.state = ShardedState::new(1);
        if !ms.is_empty() {
            self.state.load_full(vec![ms]);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "rmsprop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_gradient_scale() {
        // Two problems whose gradients differ by 1000x should take nearly
        // identical first steps (that is RMSProp's point).
        let mut a = RmsProp::new(0.01);
        let mut b = RmsProp::new(0.01);
        let mut xa = vec![0.0f32];
        let mut xb = vec![0.0f32];
        a.step(&mut xa, &[1.0]);
        b.step(&mut xb, &[1000.0]);
        assert!((xa[0] - xb[0]).abs() < 1e-4, "{} vs {}", xa[0], xb[0]);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn bad_decay_panics() {
        RmsProp::with_decay(0.1, 1.5);
    }
}
