//! First-order optimizers on flat `f32` parameter vectors, with a
//! two-phase, shard-aware update API.
//!
//! Every optimizer in the workspace — including the `yellowfin` tuner —
//! implements the same [`Optimizer`] trait, which mirrors the paper's
//! *measure → tune → apply* structure (§3):
//!
//! 1. The **measure** phase is itself sharded: [`Optimizer::observe_shard`]
//!    reduces one block-aligned gradient slice into a [`StatsPartial`]
//!    of per-block partial sums (`&self`, runs on the persistent pool),
//!    and [`Optimizer::combine`] folds the partials with a fixed-order
//!    tree reduction, updates the global statistics (moment counters,
//!    curvature estimates, clipping norms), and returns the tuned
//!    [`Hyper`] — the `(lr, momentum, grad_scale)` this step will apply.
//!    [`Optimizer::observe`] is the whole-vector composition of the two.
//! 2. [`Optimizer::step_shard`] applies the update to one disjoint slice
//!    of the vector. It takes `&self`: all per-coordinate state lives in
//!    a [`ShardedState`] (per-shard, lock-protected, lazily initialized),
//!    so disjoint shards can be applied concurrently from pool workers
//!    or held behind per-shard locks by an asynchronous trainer.
//! 3. The provided [`Optimizer::step`] composes the two over a single
//!    whole-vector shard, so one-phase callers keep working unchanged —
//!    and because reductions are block-structured and updates
//!    per-coordinate, sharded measure + N parallel `step_shard`s is
//!    bitwise identical to `step` for every shard count.
//!
//! The drivers live in [`sharded`]: [`sharded::observe_sharded`] (the
//! partial-reduction measure fan-out), [`sharded::step_sharded`]
//! (measure plus uniform parallel apply) and [`sharded::step_grouped`]
//! (named [`ParamGroups`] with per-group learning-rate/momentum
//! overrides).
//!
//! Implemented baselines (the comparison set of the paper's Section 5):
//! plain SGD, Polyak and Nesterov momentum SGD, [`Adam`] (which accepts the
//! *negative* β1 values swept in Figure 10), [`AdaGrad`] and [`RmsProp`],
//! plus the [`clip::Clipped`] and [`schedule::Scheduled`] middleware.
//!
//! # Example
//!
//! ```
//! use yf_optim::{MomentumSgd, Optimizer};
//!
//! // Minimize f(x) = 0.5 * x^2 from x = 1 (one-phase API).
//! let mut opt = MomentumSgd::new(0.1, 0.9);
//! let mut x = vec![1.0f32];
//! for _ in 0..200 {
//!     let grad = vec![x[0]];
//!     opt.step(&mut x, &grad);
//! }
//! assert!(x[0].abs() < 1e-3);
//!
//! // The same trajectory, two-phase and sharded (bitwise identical).
//! use yf_optim::sharded::step_sharded;
//! let mut opt = MomentumSgd::new(0.1, 0.9);
//! let mut y = vec![1.0f32];
//! for _ in 0..200 {
//!     let grad = vec![y[0]];
//!     step_sharded(&mut opt, &mut y, &grad, 4);
//! }
//! assert_eq!(x, y);
//! ```

pub mod checkpoint;
pub mod clip;
pub mod schedule;
pub mod sharded;

mod adagrad;
mod adam;
mod groups;
mod rmsprop;
mod sgd;

pub use adagrad::AdaGrad;
pub use adam::Adam;
pub use groups::{ParamGroup, ParamGroups};
pub use rmsprop::RmsProp;
pub use sgd::{MomentumSgd, Sgd};
pub use sharded::AUTO_SHARD_MIN_DIM;
pub use sharded::{ParamShard, ShardedState, StatsPartial};

/// The hyperparameters one `observe` tunes for the step it precedes.
///
/// `grad_scale` is a global multiplier on the gradient (1.0 = none); the
/// clipping middleware folds the clip factor into it so shard application
/// never materializes a scaled gradient copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyper {
    /// Learning rate to apply.
    pub lr: f32,
    /// Momentum to apply (β1 for Adam-family optimizers; 0 when unused).
    pub momentum: f32,
    /// Global gradient scale (clipping), applied element-wise on read.
    pub grad_scale: f32,
}

impl Hyper {
    /// A plain `(lr, momentum)` pair with no gradient scaling.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Hyper {
            lr,
            momentum,
            grad_scale: 1.0,
        }
    }
}

impl Default for Hyper {
    fn default() -> Self {
        Hyper::new(0.0, 0.0)
    }
}

/// A first-order optimizer over a flat parameter vector.
///
/// Implementations must tolerate being constructed before the parameter
/// count is known: internal state buffers are sized lazily on the first
/// step. `Send + Sync` is a supertrait so `&dyn Optimizer` can fan the
/// apply phase out over the persistent worker pool.
pub trait Optimizer: Send + Sync {
    /// Measure phase: consumes the whole gradient once, updates global
    /// statistics and scalar state, and returns the hyperparameters the
    /// subsequent [`Optimizer::step_shard`] calls must apply.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()` or if the length changes
    /// between calls.
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> Hyper;

    /// Sharded half of the measure phase: reduces one disjoint,
    /// block-aligned gradient slice into a [`StatsPartial`] of per-block
    /// partial sums. `&self`, so the [`sharded::observe_sharded`] driver
    /// can run all shards concurrently on pool workers before a single
    /// [`Optimizer::combine`] folds them.
    ///
    /// The default returns an empty partial — correct for optimizers
    /// whose measurement consumes no gradient reductions (the plain
    /// baselines). Optimizers that measure gradient statistics override
    /// it together with [`Optimizer::needs_observe_partials`].
    fn observe_shard(&self, shard: ParamShard, params: &[f32], grads: &[f32]) -> StatsPartial {
        let _ = (shard, params, grads);
        StatsPartial::default()
    }

    /// Combining half of the measure phase: folds the per-shard
    /// [`StatsPartial`]s (fixed-order tree reduction — bitwise identical
    /// for every block-aligned shard plan, including the single
    /// whole-vector shard), updates the optimizer's global state, and
    /// returns the step's [`Hyper`]. An empty `partials` vector means "no
    /// fan-out ran": implementations that need the sums compute them from
    /// `grads` on the spot, which keeps [`Optimizer::observe`] a trivial
    /// `combine(params, grads, vec![], 1.0)`.
    ///
    /// `grad_scale` is the product of the gradient scales applied by
    /// enclosing middleware (1.0 at the top level): the measurement must
    /// behave as if every gradient element were pre-multiplied by it,
    /// *without* materializing a scaled copy. The returned
    /// [`Hyper::grad_scale`] excludes the incoming `grad_scale` — each
    /// wrapper folds its own factor in, so the product reaching the apply
    /// phase is the full chain.
    ///
    /// The default ignores `partials` and falls back to the whole-vector
    /// [`Optimizer::observe`] (materializing a scaled gradient copy when
    /// `grad_scale != 1.0`), so external `Optimizer` impls that predate
    /// the sharded measure phase keep working unchanged.
    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        partials: Vec<StatsPartial>,
        grad_scale: f32,
    ) -> Hyper {
        let _ = partials;
        if grad_scale == 1.0 {
            self.observe(params, grads)
        } else {
            let scaled: Vec<f32> = grads.iter().map(|&g| grad_scale * g).collect();
            self.observe(params, &scaled)
        }
    }

    /// True when the measure phase consumes gradient reductions, i.e.
    /// [`Optimizer::observe_shard`] returns meaningful partials worth
    /// fanning out. The sharded drivers skip the measure fan-out entirely
    /// when this is false.
    fn needs_observe_partials(&self) -> bool {
        false
    }

    /// Apply phase: updates one disjoint shard of the parameter vector in
    /// place. `params`/`grads` are the shard's slices; per-coordinate
    /// state lives in the optimizer's [`ShardedState`]. Callers must pass
    /// disjoint shards of one consistent plan per step (the [`sharded`]
    /// drivers do); each shard may run on its own thread.
    ///
    /// # Panics
    ///
    /// Panics on slice length mismatches or if the flat dimension changes
    /// between steps.
    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper);

    /// One-phase convenience: `observe` plus a single whole-vector
    /// `step_shard`. Equivalent to — and interchangeable with — any
    /// sharded application of the same step.
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        let hyper = self.observe(params, grads);
        self.step_shard(ParamShard::whole(params.len()), params, grads, hyper);
    }

    /// Serializes the optimizer's complete resumable state — the mutable
    /// hyperparameters, step counters, and per-coordinate buffers
    /// (stitched flat via [`ShardedState::flatten`], so checkpoints are
    /// independent of the shard plan that produced them) — into a
    /// versioned text block, or `None` when the optimizer does not
    /// support checkpointing. A restored optimizer must continue the
    /// trajectory *bit-identically*; callers that get `None` (the
    /// default, so external impls keep compiling) fall back to re-running
    /// from scratch, which is equally deterministic, just slower.
    fn checkpoint_state(&self) -> Option<String> {
        None
    }

    /// Restores state written by [`Optimizer::checkpoint_state`] into
    /// this instance (which should be freshly constructed with the same
    /// configuration).
    ///
    /// # Errors
    ///
    /// Returns [`checkpoint::OptStateError`] on kind/version mismatch,
    /// missing fields, malformed values, or (the default) when the
    /// optimizer does not support checkpointing.
    fn restore_checkpoint(&mut self, text: &str) -> Result<(), checkpoint::OptStateError> {
        let _ = text;
        Err(checkpoint::OptStateError::new(format!(
            "{} does not support state checkpointing",
            self.name()
        )))
    }

    /// The learning rate most recently used (for logging and schedules).
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// True for optimizers that tune their own learning rate (the
    /// YellowFin family): external schedules must not fight the tuner,
    /// and [`schedule::Schedule::apply`] no-ops on them.
    fn is_self_tuning(&self) -> bool {
        false
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

pub(crate) fn check_lengths(state_len: usize, params: &[f32], grads: &[f32]) {
    assert_eq!(
        params.len(),
        grads.len(),
        "optimizer: params ({}) and grads ({}) differ",
        params.len(),
        grads.len()
    );
    assert_eq!(
        state_len,
        params.len(),
        "optimizer: parameter count changed between steps ({state_len} -> {})",
        params.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_converges(mut opt: impl Optimizer, iters: usize, tol: f32) {
        // f(x) = 0.5 * sum(h_i x_i^2) with curvatures 1 and 4.
        let h = [1.0f32, 4.0];
        let mut x = vec![1.0f32, -1.0];
        for _ in 0..iters {
            let g: Vec<f32> = x.iter().zip(h.iter()).map(|(&xi, &hi)| hi * xi).collect();
            opt.step(&mut x, &g);
        }
        let dist = (x[0] * x[0] + x[1] * x[1]).sqrt();
        assert!(dist < tol, "{} left distance {dist}", opt.name());
    }

    #[test]
    fn all_optimizers_minimize_a_quadratic() {
        quadratic_converges(Sgd::new(0.1), 300, 1e-3);
        quadratic_converges(MomentumSgd::new(0.05, 0.9), 400, 1e-3);
        quadratic_converges(MomentumSgd::nesterov(0.05, 0.9), 400, 1e-3);
        quadratic_converges(Adam::new(0.1), 400, 1e-2);
        quadratic_converges(AdaGrad::new(0.5), 800, 1e-2);
        quadratic_converges(RmsProp::new(0.01), 800, 1e-2);
    }

    #[test]
    #[should_panic(expected = "params (1) and grads (2)")]
    fn length_mismatch_panics() {
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [0.0], &[0.0, 0.0]);
    }

    #[test]
    fn observe_reports_tuned_values() {
        let mut opt = MomentumSgd::new(0.25, 0.5);
        let hyper = opt.observe(&[1.0, 2.0], &[0.1, 0.2]);
        assert_eq!(hyper.lr, 0.25);
        assert_eq!(hyper.momentum, 0.5);
        assert_eq!(hyper.grad_scale, 1.0);
    }
}
