//! Baseline first-order optimizers on flat `f32` parameter vectors.
//!
//! Every optimizer in the workspace — including the `yellowfin` tuner —
//! implements the same [`Optimizer`] trait: one `step` that consumes the
//! current gradient and updates the parameters in place. Working on flat
//! vectors keeps the optimizers independent of the autodiff stack and lets
//! the asynchronous simulator snapshot models cheaply.
//!
//! Implemented baselines (the comparison set of the paper's Section 5):
//! plain SGD, Polyak and Nesterov momentum SGD, [`Adam`] (which accepts the
//! *negative* β1 values swept in Figure 10), [`AdaGrad`] and [`RmsProp`],
//! plus [`clip`] utilities and the experiments' learning-rate
//! [`schedule`]s.
//!
//! # Example
//!
//! ```
//! use yf_optim::{MomentumSgd, Optimizer};
//!
//! // Minimize f(x) = 0.5 * x^2 from x = 1.
//! let mut opt = MomentumSgd::new(0.1, 0.9);
//! let mut x = vec![1.0f32];
//! for _ in 0..200 {
//!     let grad = vec![x[0]];
//!     opt.step(&mut x, &grad);
//! }
//! assert!(x[0].abs() < 1e-3);
//! ```

pub mod clip;
pub mod schedule;

mod adagrad;
mod adam;
mod rmsprop;
mod sgd;

pub use adagrad::AdaGrad;
pub use adam::Adam;
pub use rmsprop::RmsProp;
pub use sgd::{MomentumSgd, Sgd};

/// A first-order optimizer over a flat parameter vector.
///
/// Implementations must tolerate being constructed before the parameter
/// count is known: internal state buffers are sized lazily on the first
/// `step`.
pub trait Optimizer {
    /// Applies one update to `params` in place given the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()` or if the length changes
    /// between calls.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// The learning rate most recently used (for logging and schedules).
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

pub(crate) fn check_lengths(state_len: usize, params: &[f32], grads: &[f32]) {
    assert_eq!(
        params.len(),
        grads.len(),
        "optimizer: params ({}) and grads ({}) differ",
        params.len(),
        grads.len()
    );
    assert_eq!(
        state_len,
        params.len(),
        "optimizer: parameter count changed between steps ({state_len} -> {})",
        params.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_converges(mut opt: impl Optimizer, iters: usize, tol: f32) {
        // f(x) = 0.5 * sum(h_i x_i^2) with curvatures 1 and 4.
        let h = [1.0f32, 4.0];
        let mut x = vec![1.0f32, -1.0];
        for _ in 0..iters {
            let g: Vec<f32> = x.iter().zip(h.iter()).map(|(&xi, &hi)| hi * xi).collect();
            opt.step(&mut x, &g);
        }
        let dist = (x[0] * x[0] + x[1] * x[1]).sqrt();
        assert!(dist < tol, "{} left distance {dist}", opt.name());
    }

    #[test]
    fn all_optimizers_minimize_a_quadratic() {
        quadratic_converges(Sgd::new(0.1), 300, 1e-3);
        quadratic_converges(MomentumSgd::new(0.05, 0.9), 400, 1e-3);
        quadratic_converges(MomentumSgd::nesterov(0.05, 0.9), 400, 1e-3);
        quadratic_converges(Adam::new(0.1), 400, 1e-2);
        quadratic_converges(AdaGrad::new(0.5), 800, 1e-2);
        quadratic_converges(RmsProp::new(0.01), 800, 1e-2);
    }

    #[test]
    #[should_panic(expected = "params (1) and grads (2)")]
    fn length_mismatch_panics() {
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [0.0], &[0.0, 0.0]);
    }
}
