//! The shard-aware half of the optimizer API: [`Hyper`], [`ParamShard`],
//! [`StatsPartial`], the per-shard state pool [`ShardedState`], and the
//! drivers that fan a single tuned step out over disjoint parameter
//! slices.
//!
//! YellowFin's loop (paper §3) is *measure → tune → apply*: the global
//! statistics and the `(lr, momentum)` decision need the whole gradient
//! once per step, but the update itself is per-coordinate. Both phases
//! run sharded here:
//!
//! - **measure**: [`observe_sharded`] fans [`Optimizer::observe_shard`]
//!   out over block-aligned slices, each returning a [`StatsPartial`] of
//!   per-block `f64` partial sums, then hands them to
//!   [`Optimizer::combine`] for the deterministic tree combine and the
//!   scalar tuning decision;
//! - **apply**: [`apply_sharded`] / [`step_grouped`] fan
//!   [`Optimizer::step_shard`] out over the shard plan.
//!
//! Partial reductions are block-structured (see [`yf_tensor::reduce`]),
//! so the measured statistics — and therefore the whole trajectory — are
//! bitwise identical for every shard count. Measure, combine, and apply
//! all ride **one** dispatch onto the persistent worker pool
//! ([`yf_tensor::parallel::Pool`]): the pool's phased dispatch runs the
//! observe shards, then `combine` exactly once on the calling thread
//! (which holds the `&mut` the scalar tuning state needs while every
//! worker is parked at the phase barrier), then the apply shards — no
//! per-step thread spawns, no second fan-out. [`step_fused`] is that
//! driver; [`observe_sharded`] / [`step_sharded`] / [`step_grouped`] are
//! thin plans on top of it.
//!
//! [`ShardedState`] is the helper every stateful optimizer shares: one
//! lock-protected, lazily-initialized slot of state buffers per shard, so
//! `step_shard` can take `&self` and disjoint shards can be applied
//! concurrently from pool workers without any whole-model lock.

use crate::{Hyper, Optimizer, ParamGroups};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use yf_tensor::{parallel, reduce};

/// Below this many coordinates, auto-sharding stays single-threaded: the
/// fan-out overhead costs more than the update.
pub const AUTO_SHARD_MIN_DIM: usize = 1 << 16;

/// The automatic shard-count policy shared by the trainers and
/// [`ParamGroups`]: an explicit `shards > 0` wins; otherwise the kernel
/// thread count for vectors large enough to pay for fan-out, else 1.
pub fn auto_shards(shards: usize, dim: usize) -> usize {
    if shards > 0 {
        shards
    } else if dim >= AUTO_SHARD_MIN_DIM {
        parallel::num_threads()
    } else {
        1
    }
}

/// Identifies one disjoint slice of the flat parameter vector within a
/// shard plan. Shards of one plan must tile `[0, total)` without overlap;
/// the drivers in this module guarantee that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamShard {
    /// Position of this shard in the plan (`0..count`).
    pub index: usize,
    /// Number of shards in the plan.
    pub count: usize,
    /// First flat coordinate covered by this shard.
    pub offset: usize,
    /// Total flat coordinates across the whole plan.
    pub total: usize,
}

impl ParamShard {
    /// The trivial plan: one shard covering the whole vector. This is
    /// what the blanket [`Optimizer::step`] uses.
    pub fn whole(total: usize) -> Self {
        ParamShard {
            index: 0,
            count: 1,
            offset: 0,
            total,
        }
    }

    /// Panics unless `params`/`grads` are equal-length and fit inside the
    /// shard's coordinate range. Every `step_shard` implementation calls
    /// this first so the length-mismatch panics of the one-phase API are
    /// preserved verbatim.
    pub fn validate(&self, params: &[f32], grads: &[f32]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "optimizer: params ({}) and grads ({}) differ",
            params.len(),
            grads.len()
        );
        assert!(
            self.index < self.count,
            "optimizer: shard index {} out of plan of {}",
            self.index,
            self.count
        );
        assert!(
            self.offset + params.len() <= self.total,
            "optimizer: shard [{}, {}) exceeds parameter count {}",
            self.offset,
            self.offset + params.len(),
            self.total
        );
    }
}

/// One shard's contribution to the measure phase: per-block `f64` partial
/// sums over a block-aligned slice of the flat gradient (block size
/// [`yf_tensor::reduce::BLOCK`]), plus an optional nested partial so
/// middleware like [`crate::clip::Clipped`] can carry its wrapped
/// optimizer's statistics through the same fan-out.
///
/// `sums` carries, by contract, the per-block **Σg² of the raw gradient
/// slice** ([`StatsPartial::sumsq`]) — the one statistic every
/// norm-measuring optimizer in the workspace needs. Fixing the meaning
/// (instead of leaving it per-optimizer) is what lets clipping middleware
/// share a single sweep with its wrapped optimizer rather than reducing
/// the same slice twice; gradient scales are applied analytically at
/// combine time, never to the sums.
///
/// The block structure is the bitwise-determinism contract: partials from
/// any block-aligned shard plan concatenate into the same per-block sum
/// sequence, which [`StatsPartial::merge_sums`] folds with the fixed-order
/// tree reduction — so sharded measurement equals whole-vector
/// measurement exactly, not approximately.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsPartial {
    /// Global index of the first reduction block this partial covers.
    pub first_block: usize,
    /// Per-block raw-gradient Σg² partial sums, one per block the shard
    /// overlaps.
    pub sums: Vec<f64>,
    /// The wrapped optimizer's partial for the same shard (middleware).
    pub inner: Option<Box<StatsPartial>>,
}

impl StatsPartial {
    /// Per-block Σg² partial for a shard starting at flat `offset` — the
    /// partial every gradient-norm-measuring optimizer in the workspace
    /// returns from [`Optimizer::observe_shard`].
    ///
    /// # Panics
    ///
    /// Panics unless `offset` is a multiple of the reduction block size
    /// (the [`observe_sharded`] driver aligns its plan; hand-rolled
    /// callers must too).
    pub fn sumsq(offset: usize, grads: &[f32]) -> Self {
        assert_eq!(
            offset % reduce::BLOCK,
            0,
            "stats partial: shard offset {offset} not block-aligned"
        );
        StatsPartial {
            first_block: offset / reduce::BLOCK,
            sums: reduce::block_sumsq(grads),
            inner: None,
        }
    }

    /// Attaches a wrapped optimizer's partial (middleware composition).
    pub fn with_inner(mut self, inner: Option<StatsPartial>) -> Self {
        self.inner = inner.map(Box::new);
        self
    }

    /// Folds partials covering a `len`-coordinate vector into the global
    /// sum: concatenates the per-block sums in shard order and applies
    /// the fixed-order tree reduction. Bitwise equal to the whole-vector
    /// blocked reduction for every block-aligned shard plan.
    ///
    /// # Panics
    ///
    /// Panics if the partials do not tile exactly the
    /// `len.div_ceil(BLOCK)` blocks in order.
    pub fn merge_sums(partials: &[StatsPartial], len: usize) -> f64 {
        let expected = reduce::blocks_for(len);
        let mut all = Vec::with_capacity(expected);
        for p in partials {
            assert_eq!(
                p.first_block,
                all.len(),
                "stats partial: shards out of order or leave a gap"
            );
            all.extend_from_slice(&p.sums);
        }
        assert_eq!(
            all.len(),
            expected,
            "stats partial: {} blocks do not cover {len} coordinates",
            all.len()
        );
        reduce::tree_reduce(&all)
    }

    /// Moves the nested middleware partials out, preserving shard order.
    pub fn take_inner(partials: &mut [StatsPartial]) -> Vec<StatsPartial> {
        partials
            .iter_mut()
            .filter_map(|p| p.inner.take().map(|b| *b))
            .collect()
    }
}

/// One shard's lazily-initialized state buffers.
#[derive(Debug, Clone, Default)]
struct Slot {
    offset: usize,
    len: usize,
    /// False until the shard's first `with` call.
    touched: bool,
    /// `buffers` vectors; each is empty until the optimizer initializes
    /// it (or it is seeded from `spill` at slot creation).
    bufs: Vec<Vec<f32>>,
}

#[derive(Debug, Default)]
struct StateInner {
    /// One slot per shard of the current plan.
    slots: Vec<Arc<Mutex<Slot>>>,
    /// Flat dimension of the whole vector; 0 until first observed.
    total: usize,
    /// Full-length carry-over buffers: populated when the shard plan
    /// changes (or a checkpoint is loaded) so state survives re-sharding.
    spill: Vec<Vec<f32>>,
}

impl StateInner {
    fn matches(&self, shard: ParamShard) -> bool {
        self.slots.len() == shard.count && self.total == shard.total
    }
}

/// Per-shard optimizer state shared by every stateful optimizer in the
/// workspace (velocity for momentum SGD and YellowFin, the moment buffers
/// for Adam/AdaGrad/RMSProp, previous parameters for the closed-loop
/// position update).
///
/// Each shard owns a private slot of `buffers` state vectors behind its
/// own mutex, created lazily on the shard's first
/// [`with`](ShardedState::with). Disjoint shards therefore never contend,
/// which is what lets [`Optimizer::step_shard`] take `&self` and run on
/// pool worker threads. Buffers start *empty* (length 0); the optimizer
/// decides their initial contents (zeros for moments, a parameter copy
/// for position-form updates), so "lazily initialized" means exactly what
/// it meant for the old whole-vector `Vec`s.
///
/// Changing the shard plan between steps (different shard count or
/// boundaries — e.g. a trainer re-tuned its thread count, or a checkpoint
/// is resumed with different parallelism) is handled transparently: the
/// existing per-shard state is flattened into full-length carry-over
/// buffers and re-split under the new plan, preserving the trajectory
/// bit-for-bit. Changing the *total* parameter count still panics, like
/// the one-phase API did.
#[derive(Debug)]
pub struct ShardedState {
    buffers: usize,
    inner: RwLock<StateInner>,
}

impl ShardedState {
    /// A pool of `buffers` state vectors per shard.
    pub fn new(buffers: usize) -> Self {
        ShardedState {
            buffers,
            inner: RwLock::new(StateInner::default()),
        }
    }

    /// Runs `f` on the shard's state buffers, creating the slot on first
    /// use. `len` is the shard's coordinate count (`params.len()` at the
    /// call site). Buffers passed to `f` are empty on the very first
    /// touch of a fresh optimizer; thereafter they carry the shard's
    /// state, including across shard-plan changes.
    ///
    /// # Panics
    ///
    /// Panics if `shard.total` disagrees with the dimension this state
    /// has already seen ("parameter count changed between steps").
    pub fn with<R>(
        &self,
        shard: ParamShard,
        len: usize,
        f: impl FnOnce(&mut [Vec<f32>]) -> R,
    ) -> R {
        assert!(shard.index < shard.count, "sharded state: bad shard index");
        loop {
            {
                let inner = self.inner.read().expect("sharded state lock");
                if inner.total != 0 && inner.total != shard.total {
                    panic!(
                        "optimizer: parameter count changed between steps ({} -> {})",
                        inner.total, shard.total
                    );
                }
                if inner.matches(shard) {
                    let slot = Arc::clone(&inner.slots[shard.index]);
                    let mut guard = slot.lock().expect("sharded slot lock");
                    if !guard.touched {
                        guard.offset = shard.offset;
                        guard.len = len;
                        guard.touched = true;
                        guard.bufs = (0..self.buffers)
                            .map(|b| match inner.spill.get(b) {
                                Some(full) if !full.is_empty() => {
                                    full[shard.offset..shard.offset + len].to_vec()
                                }
                                _ => Vec::new(),
                            })
                            .collect();
                    }
                    if guard.offset == shard.offset && guard.len == len {
                        return f(&mut guard.bufs);
                    }
                    // Same shard count, different boundaries: fall
                    // through and re-plan.
                }
            }
            self.replan(shard, len);
        }
    }

    /// Rebuilds the slot table for `shard`'s plan, spilling any existing
    /// per-shard state into full-length carry-over buffers first.
    fn replan(&self, shard: ParamShard, len: usize) {
        let mut inner = self.inner.write().expect("sharded state lock");
        if inner.matches(shard) {
            // Another thread may already have re-planned to this exact
            // plan; only spill again if our slot still disagrees.
            let guard = inner.slots[shard.index].lock().expect("sharded slot lock");
            if !guard.touched || (guard.offset == shard.offset && guard.len == len) {
                return;
            }
        }
        Self::spill_locked(&mut inner, self.buffers);
        inner.total = shard.total;
        inner.slots = (0..shard.count)
            .map(|_| Arc::new(Mutex::new(Slot::default())))
            .collect();
    }

    /// Flattens touched slots into `inner.spill` (zero-based full-length
    /// buffers), then clears the slot table.
    fn spill_locked(inner: &mut StateInner, buffers: usize) {
        if inner.total == 0 {
            inner.slots.clear();
            return;
        }
        let any_touched = inner
            .slots
            .iter()
            .any(|s| s.lock().expect("sharded slot lock").touched);
        if !any_touched {
            inner.slots.clear();
            return;
        }
        for b in 0..buffers {
            if inner.spill.len() <= b {
                inner.spill.push(Vec::new());
            }
            if inner.spill[b].is_empty() {
                inner.spill[b] = vec![0.0; inner.total];
            }
        }
        for slot in &inner.slots {
            let slot = slot.lock().expect("sharded slot lock");
            if !slot.touched {
                continue;
            }
            for (b, buf) in slot.bufs.iter().enumerate() {
                if buf.len() == slot.len {
                    inner.spill[b][slot.offset..slot.offset + slot.len].copy_from_slice(buf);
                }
            }
        }
        inner.slots.clear();
    }

    /// Stitches buffer `b` back into one full-length vector (zeros where
    /// no shard has state yet). Empty if nothing has been stepped — the
    /// same "empty until first step" contract the old whole-vector state
    /// had, which the checkpoint format relies on.
    pub fn flatten(&self, b: usize) -> Vec<f32> {
        let inner = self.inner.read().expect("sharded state lock");
        if inner.total == 0 {
            return Vec::new();
        }
        let mut out = match inner.spill.get(b) {
            Some(full) if !full.is_empty() => full.clone(),
            _ => vec![0.0; inner.total],
        };
        let mut any = inner.spill.get(b).is_some_and(|full| !full.is_empty());
        for slot in &inner.slots {
            let slot = slot.lock().expect("sharded slot lock");
            if !slot.touched {
                continue;
            }
            if let Some(buf) = slot.bufs.get(b) {
                if buf.len() == slot.len {
                    out[slot.offset..slot.offset + slot.len].copy_from_slice(buf);
                    any = true;
                }
            }
        }
        if any {
            out
        } else {
            Vec::new()
        }
    }

    /// Replaces all state with full-length buffers (checkpoint restore).
    /// The next `step_shard` re-splits them under whatever plan it uses.
    ///
    /// # Panics
    ///
    /// Panics if the buffers disagree on length.
    pub fn load_full(&mut self, bufs: Vec<Vec<f32>>) {
        let total = bufs.first().map_or(0, Vec::len);
        assert!(
            bufs.iter().all(|b| b.len() == total),
            "sharded state: checkpoint buffers disagree on length"
        );
        let inner = self.inner.get_mut().expect("sharded state lock");
        *inner = StateInner {
            slots: Vec::new(),
            total,
            spill: bufs,
        };
    }
}

impl Clone for ShardedState {
    fn clone(&self) -> Self {
        let inner = self.inner.read().expect("sharded state lock");
        let slots = inner
            .slots
            .iter()
            .map(|s| Arc::new(Mutex::new(s.lock().expect("sharded slot lock").clone())))
            .collect();
        ShardedState {
            buffers: self.buffers,
            inner: RwLock::new(StateInner {
                slots,
                total: inner.total,
                spill: inner.spill.clone(),
            }),
        }
    }
}

/// The block-aligned measure-phase partition: at most `shards` contiguous
/// chunks of whole reduction blocks covering `total` coordinates. Chunk
/// boundaries land on block boundaries so every [`StatsPartial`] carries
/// exactly the per-block sums the whole-vector pass would produce.
fn observe_plan(total: usize, shards: usize) -> Vec<(usize, usize)> {
    let nblocks = reduce::blocks_for(total);
    if nblocks == 0 {
        return Vec::new();
    }
    let chunks = shards.clamp(1, nblocks);
    let blocks_per = nblocks.div_ceil(chunks);
    let mut plan = Vec::with_capacity(chunks);
    let mut offset = 0;
    while offset < total {
        let len = (blocks_per * reduce::BLOCK).min(total - offset);
        plan.push((offset, len));
        offset += len;
    }
    plan
}

/// Parameter vector handed across the fused dispatch as a raw pointer so
/// the measure phase can read it shared while the apply phase later
/// writes disjoint chunks through the same allocation.
///
/// Safety contract (upheld by [`step_fused`]'s callers): all `read()`
/// slices are dead before the first `chunk_mut` — the pool's phase
/// barrier orders every phase-1/`mid` read strictly before any phase-2
/// write — and phase-2 chunks are pairwise disjoint.
struct RawParams {
    ptr: *mut f32,
    len: usize,
}

unsafe impl Send for RawParams {}
unsafe impl Sync for RawParams {}

impl RawParams {
    fn new(params: &mut [f32]) -> Self {
        RawParams {
            ptr: params.as_mut_ptr(),
            len: params.len(),
        }
    }

    /// The whole vector, read-only (measure phase / `combine`).
    ///
    /// # Safety
    ///
    /// No `chunk_mut` slice may be live, and the returned slice must be
    /// dead before the next `chunk_mut`.
    unsafe fn read(&self) -> &[f32] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// One disjoint chunk, mutable (apply phase).
    ///
    /// # Safety
    ///
    /// `[offset, offset + len)` must be in bounds, no `read()` slice may
    /// be live, and concurrent `chunk_mut` ranges must not overlap.
    // The `&mut` out of `&self` is the entire point of this wrapper: the
    // disjointness/ordering contract above replaces the borrow checker.
    #[allow(clippy::mut_from_ref)]
    unsafe fn chunk_mut(&self, offset: usize, len: usize) -> &mut [f32] {
        debug_assert!(offset + len <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(offset), len) }
    }
}

/// The fused measure → combine → apply driver: **one** dispatch onto the
/// persistent worker pool per optimizer step.
///
/// Phase 1 fans [`Optimizer::observe_shard`] out over a block-aligned
/// partition of the gradient; between the phases the pool runs the
/// closure-side critical section exactly once on the calling thread —
/// every worker is parked at the barrier, so the `&mut` borrow for
/// [`Optimizer::combine`] (the deterministic tree fold plus the scalar
/// tuning decision) is exclusive by construction; phase 2 runs
/// `apply(task, &opt, hyper)` for `apply_tasks` tasks, which callers use
/// to fan [`Optimizer::step_shard`] out over their shard plan. Returns
/// the step's tuned [`Hyper`].
///
/// Optimizers whose measure phase consumes no gradient reductions
/// ([`Optimizer::needs_observe_partials`] is false), and `shards <= 1`
/// plans, skip phase 1 entirely and go straight to `combine`.
///
/// The partition, the partial order, and the fold are identical to the
/// whole-vector pass, so the result is bitwise equal to
/// [`Optimizer::observe`] + serial application for every shard count.
///
/// # Panics
///
/// Panics if `observe_params` and `grads` differ in length (same message
/// as the one-phase API), or on whatever the optimizer's own `combine`
/// checks. A panic in any shard resumes on the caller; the pool survives.
pub fn step_fused(
    opt: &mut dyn Optimizer,
    observe_params: &[f32],
    grads: &[f32],
    shards: usize,
    apply_tasks: usize,
    apply: impl Fn(usize, &dyn Optimizer, Hyper) + Sync,
) -> Hyper {
    assert_eq!(
        observe_params.len(),
        grads.len(),
        "optimizer: params ({}) and grads ({}) differ",
        observe_params.len(),
        grads.len()
    );
    let total = observe_params.len();
    let use_partials = total > 0 && shards > 1 && opt.needs_observe_partials();
    let plan = if use_partials {
        observe_plan(total, shards)
    } else {
        Vec::new()
    };
    let count = plan.len();
    let slots: Vec<Mutex<Option<StatsPartial>>> = (0..count).map(|_| Mutex::new(None)).collect();
    // Shared handle to the optimizer: the phases take read guards, the
    // mid-section takes the write guard. The pool's phase barrier means
    // the lock is never contended — it exists to hand the compiler a
    // safe `&mut` in the middle of a shared fan-out.
    let cell = RwLock::new(opt);
    let hyper_slot: OnceLock<Hyper> = OnceLock::new();
    parallel::Pool::global().run_phased(
        count,
        |i| {
            let (offset, len) = plan[i];
            let shard = ParamShard {
                index: i,
                count,
                offset,
                total,
            };
            let guard = cell.read().expect("optimizer cell");
            let p = guard.observe_shard(
                shard,
                &observe_params[offset..offset + len],
                &grads[offset..offset + len],
            );
            *slots[i].lock().expect("partial slot") = Some(p);
        },
        || {
            let mut guard = cell.write().expect("optimizer cell");
            let partials: Vec<StatsPartial> = slots
                .iter()
                .map(|s| s.lock().expect("partial slot").take().expect("shard ran"))
                .collect();
            let hyper = guard.combine(observe_params, grads, partials, 1.0);
            let _ = hyper_slot.set(hyper);
            hyper
        },
        apply_tasks,
        |i| {
            let hyper = *hyper_slot.get().expect("combine ran before apply");
            let guard = cell.read().expect("optimizer cell");
            apply(i, &**guard, hyper);
        },
    )
}

/// The sharded measure phase: fans [`Optimizer::observe_shard`] out over
/// a block-aligned partition of the gradient on the persistent pool, then
/// folds the [`StatsPartial`]s with [`Optimizer::combine`] — which also
/// makes the tuning decision and returns the step's [`Hyper`]. Bitwise
/// identical to [`Optimizer::observe`] for every `shards` value.
///
/// This is [`step_fused`] with an empty apply phase. Optimizers whose
/// measure phase consumes no gradient reductions
/// ([`Optimizer::needs_observe_partials`] is false) skip the fan-out
/// entirely and go straight to `combine`.
///
/// # Panics
///
/// Panics if `params` and `grads` differ in length (same message as the
/// one-phase API), or on whatever the optimizer's own `combine` checks.
pub fn observe_sharded(
    opt: &mut dyn Optimizer,
    params: &[f32],
    grads: &[f32],
    shards: usize,
) -> Hyper {
    step_fused(opt, params, grads, shards, 0, |_, _, _| {})
}

/// One fully sharded step: the measure phase fanned out over
/// block-aligned partial reductions, the deterministic combine, then the
/// apply phase fanned out over the shard plan — all in a single
/// [`step_fused`] pool dispatch. With `shards <= 1` this is exactly the
/// blanket [`Optimizer::step`]; reductions are block-structured and
/// updates per-coordinate, so the result is bitwise identical for any
/// shard count.
pub fn step_sharded(opt: &mut dyn Optimizer, params: &mut [f32], grads: &[f32], shards: usize) {
    let total = params.len();
    if total == 0 {
        observe_sharded(opt, params, grads, shards);
        return;
    }
    let shards_apply = shards.clamp(1, total);
    let rows_per = parallel::chunk_rows(total, shards_apply);
    let count = total.div_ceil(rows_per);
    let raw = RawParams::new(params);
    // SAFETY: the observe slice is only read in phase 1 and `combine`;
    // the pool's phase barrier orders those reads strictly before the
    // apply chunks below, which tile `[0, total)` without overlap.
    step_fused(
        opt,
        unsafe { raw.read() },
        grads,
        shards,
        count,
        |i, opt, hyper| {
            let offset = i * rows_per;
            let len = rows_per.min(total - offset);
            let shard = ParamShard {
                index: i,
                count,
                offset,
                total,
            };
            let chunk = unsafe { raw.chunk_mut(offset, len) };
            opt.step_shard(shard, chunk, &grads[offset..offset + len], hyper);
        },
    );
}

/// The apply phase alone: fans `hyper` out over `shards` slices on the
/// persistent pool. Use this when `observe` already ran (e.g. the caller
/// inspected the tuned values first, or holds parameters behind
/// per-shard locks).
pub fn apply_sharded(
    opt: &dyn Optimizer,
    params: &mut [f32],
    grads: &[f32],
    hyper: Hyper,
    shards: usize,
) {
    let total = params.len();
    if total == 0 {
        return;
    }
    let shards = shards.clamp(1, total);
    if shards == 1 {
        opt.step_shard(ParamShard::whole(total), params, grads, hyper);
        return;
    }
    let rows_per = parallel::chunk_rows(total, shards);
    let count = total.div_ceil(rows_per);
    parallel::chunks_mut(params, 1, shards, |first, chunk| {
        let shard = ParamShard {
            index: first / rows_per,
            count,
            offset: first,
            total,
        };
        opt.step_shard(shard, chunk, &grads[first..first + chunk.len()], hyper);
    });
}

/// One contiguous apply chunk of the grouped plan, globally numbered.
struct ChunkDesc {
    /// Global shard index across all groups (one consistent plan).
    index: usize,
    /// Which group the chunk belongs to (for hyper overrides).
    group: usize,
    /// First flat coordinate, global.
    offset: usize,
    /// Coordinates in this chunk.
    len: usize,
}

/// One sharded measure phase plus a grouped, sharded apply: each group of
/// `groups` is applied with its own (override-adjusted) hyperparameters,
/// split into parallel shards. Shard indices are numbered globally across
/// groups so [`ShardedState`] sees one consistent plan; the measure phase
/// runs over the whole vector (group boundaries do not affect the
/// statistics), and measure, combine, and every group's apply chunks all
/// share a single [`step_fused`] pool dispatch.
///
/// # Panics
///
/// Panics if `groups.total()` does not match `params.len()`.
pub fn step_grouped(
    opt: &mut dyn Optimizer,
    groups: &ParamGroups,
    params: &mut [f32],
    grads: &[f32],
) {
    assert_eq!(
        groups.total(),
        params.len(),
        "step_grouped: groups cover {} coordinates, params have {}",
        groups.total(),
        params.len()
    );
    let total = params.len();
    let threads = groups.resolved_shards();
    // Pre-compute the flat chunk list: per-group plans, globally indexed.
    let mut chunks: Vec<ChunkDesc> = Vec::new();
    let mut base_index = 0;
    for (gi, g) in groups.groups().iter().enumerate() {
        if g.len == 0 {
            continue;
        }
        let t = threads.clamp(1, g.len);
        let rows_per = parallel::chunk_rows(g.len, t);
        let n = g.len.div_ceil(rows_per);
        for c in 0..n {
            let off = c * rows_per;
            chunks.push(ChunkDesc {
                index: base_index + c,
                group: gi,
                offset: g.offset + off,
                len: rows_per.min(g.len - off),
            });
        }
        base_index += n;
    }
    let count = base_index;
    let raw = RawParams::new(params);
    // SAFETY: observe reads complete at the phase barrier before the
    // apply chunks write; the chunk list tiles each group disjointly and
    // the groups tile the vector.
    step_fused(
        opt,
        unsafe { raw.read() },
        grads,
        threads,
        chunks.len(),
        |i, opt, base| {
            let d = &chunks[i];
            let g = &groups.groups()[d.group];
            let shard = ParamShard {
                index: d.index,
                count,
                offset: d.offset,
                total,
            };
            let chunk = unsafe { raw.chunk_mut(d.offset, d.len) };
            let gslice = &grads[d.offset..d.offset + d.len];
            opt.step_shard(shard, chunk, gslice, g.adjust(base));
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MomentumSgd, Optimizer, Sgd};

    fn grad(x: &[f32]) -> Vec<f32> {
        x.to_vec()
    }

    #[test]
    fn sharded_matches_whole_step_bitwise() {
        for shards in [1usize, 2, 3, 4, 7] {
            let mut a = MomentumSgd::new(0.07, 0.9);
            let mut b = MomentumSgd::new(0.07, 0.9);
            let mut xa: Vec<f32> = (0..23).map(|i| (i as f32 * 0.3).sin()).collect();
            let mut xb = xa.clone();
            for _ in 0..25 {
                let g = grad(&xa);
                a.step(&mut xa, &g);
                let g = grad(&xb);
                step_sharded(&mut b, &mut xb, &g, shards);
            }
            assert_eq!(xa, xb, "shards = {shards}");
        }
    }

    #[test]
    fn shard_plan_change_preserves_state() {
        // 1-shard steps, then 4-shard steps, must equal all-1-shard.
        let mut a = MomentumSgd::new(0.05, 0.8);
        let mut b = MomentumSgd::new(0.05, 0.8);
        let mut xa: Vec<f32> = (0..17).map(|i| i as f32 * 0.1 - 0.8).collect();
        let mut xb = xa.clone();
        for t in 0..30 {
            let g = grad(&xa);
            a.step(&mut xa, &g);
            let g = grad(&xb);
            let shards = if t < 10 { 1 } else { 4 };
            step_sharded(&mut b, &mut xb, &g, shards);
        }
        assert_eq!(xa, xb, "re-sharding mid-run must carry state over");
    }

    #[test]
    fn flatten_and_load_round_trip() {
        let state = ShardedState::new(1);
        let shard = ParamShard::whole(4);
        state.with(shard, 4, |bufs| {
            bufs[0] = vec![1.0, 2.0, 3.0, 4.0];
        });
        let flat = state.flatten(0);
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        let mut restored = ShardedState::new(1);
        restored.load_full(vec![flat]);
        // Read back under a different plan.
        let s0 = ParamShard {
            index: 0,
            count: 2,
            offset: 0,
            total: 4,
        };
        restored.with(s0, 2, |bufs| assert_eq!(bufs[0], vec![1.0, 2.0]));
        let s1 = ParamShard {
            index: 1,
            count: 2,
            offset: 2,
            total: 4,
        };
        restored.with(s1, 2, |bufs| assert_eq!(bufs[0], vec![3.0, 4.0]));
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn dimension_change_panics() {
        let state = ShardedState::new(1);
        state.with(ParamShard::whole(3), 3, |_| {});
        state.with(ParamShard::whole(4), 4, |_| {});
    }

    #[test]
    fn fused_step_is_one_pool_dispatch() {
        // The whole measure → combine → apply step must ride a single
        // pool fan-out. `Clipped` measures (needs_observe_partials), so
        // a multi-block vector exercises both phases; the counter is
        // thread-local, so concurrent tests cannot skew the delta.
        let mut opt = crate::clip::Clipped::new(MomentumSgd::new(0.05, 0.9), 1e6);
        let mut x: Vec<f32> = (0..4 * reduce::BLOCK)
            .map(|i| (i as f32 * 0.01).sin())
            .collect();
        let g = grad(&x);
        let before = parallel::fanout_count();
        step_sharded(&mut opt, &mut x, &g, 4);
        assert_eq!(
            parallel::fanout_count() - before,
            1,
            "measure + combine + apply must share one dispatch"
        );
        // The measure-only driver is also a single dispatch.
        let before = parallel::fanout_count();
        observe_sharded(&mut opt, &x, &g, 4);
        assert_eq!(parallel::fanout_count() - before, 1);
    }

    #[test]
    fn grouped_step_is_one_pool_dispatch() {
        let groups = ParamGroups::from_named([("a", 2 * reduce::BLOCK), ("b", 2 * reduce::BLOCK)])
            .with_shards(4);
        let mut opt = crate::clip::Clipped::new(MomentumSgd::new(0.05, 0.9), 1e6);
        let mut x: Vec<f32> = (0..4 * reduce::BLOCK)
            .map(|i| (i as f32 * 0.02).cos())
            .collect();
        let g = grad(&x);
        let before = parallel::fanout_count();
        step_grouped(&mut opt, &groups, &mut x, &g);
        assert_eq!(
            parallel::fanout_count() - before,
            1,
            "grouped step must fuse"
        );
    }

    #[test]
    fn apply_sharded_on_stateless_optimizer() {
        let mut opt = Sgd::new(0.5);
        let mut x = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        let g = vec![2.0f32; 5];
        let hyper = opt.observe(&x, &g);
        apply_sharded(&opt, &mut x, &g, hyper, 3);
        assert_eq!(x, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
