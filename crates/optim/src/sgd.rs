//! Stochastic gradient descent, with and without momentum.

use crate::checkpoint::{write_dim, OptStateError, StateReader, StateWriter};
use crate::{check_lengths, Hyper, Optimizer, ParamShard, ShardedState};
use yf_tensor::elementwise;

/// Vanilla SGD: `x <- x - lr * g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    dim: Option<usize>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, dim: None }
    }
}

impl Optimizer for Sgd {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> Hyper {
        let dim = *self.dim.get_or_insert(params.len());
        check_lengths(dim, params, grads);
        Hyper::new(self.lr, 0.0)
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        _partials: Vec<crate::StatsPartial>,
        _grad_scale: f32,
    ) -> Hyper {
        // Measurement ignores gradient values: no scaled copy needed.
        self.observe(params, grads)
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        shard.validate(params, grads);
        elementwise::axpy(params, -(hyper.lr * hyper.grad_scale), grads);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn checkpoint_state(&self) -> Option<String> {
        let mut w = StateWriter::new("sgd");
        w.f32_field("lr", self.lr);
        write_dim(&mut w, "dim", self.dim);
        Some(w.finish())
    }

    fn restore_checkpoint(&mut self, text: &str) -> Result<(), OptStateError> {
        let r = StateReader::new(text, "sgd")?;
        self.lr = r.f32("lr")?;
        self.dim = r.dim("dim")?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Momentum SGD, Polyak's heavy ball by default (Eq. 1 of the paper):
///
/// `v <- mu * v - lr * g;  x <- x + v`
///
/// which is algebraically `x_{t+1} = x_t - lr * g + mu * (x_t - x_{t-1})`.
/// The [`MomentumSgd::nesterov`] constructor applies the momentum
/// correction of Nesterov's accelerated gradient instead (the variant used
/// by the Table 1 default optimizer).
#[derive(Debug, Clone)]
pub struct MomentumSgd {
    lr: f32,
    momentum: f32,
    nesterov: bool,
    velocity: ShardedState,
    dim: Option<usize>,
}

impl MomentumSgd {
    /// Polyak momentum SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        MomentumSgd {
            lr,
            momentum,
            nesterov: false,
            velocity: ShardedState::new(1),
            dim: None,
        }
    }

    /// Nesterov momentum SGD.
    pub fn nesterov(lr: f32, momentum: f32) -> Self {
        MomentumSgd {
            nesterov: true,
            ..MomentumSgd::new(lr, momentum)
        }
    }

    /// Current momentum value.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Overrides the momentum (the closed-loop controller does this every
    /// iteration).
    pub fn set_momentum(&mut self, momentum: f32) {
        self.momentum = momentum;
    }

    /// The velocity buffer stitched back into one flat vector (empty
    /// before the first step).
    pub fn velocity(&self) -> Vec<f32> {
        self.velocity.flatten(0)
    }
}

impl Optimizer for MomentumSgd {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> Hyper {
        let dim = *self.dim.get_or_insert(params.len());
        check_lengths(dim, params, grads);
        Hyper::new(self.lr, self.momentum)
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        _partials: Vec<crate::StatsPartial>,
        _grad_scale: f32,
    ) -> Hyper {
        // Measurement ignores gradient values: no scaled copy needed.
        self.observe(params, grads)
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        shard.validate(params, grads);
        self.velocity.with(shard, params.len(), |bufs| {
            let v = &mut bufs[0];
            if v.is_empty() {
                v.resize(params.len(), 0.0);
            }
            // Single fused pass: velocity update plus either the Polyak
            // apply or the Nesterov look-ahead correction.
            elementwise::momentum_step(
                params,
                v,
                grads,
                hyper.momentum,
                hyper.lr,
                self.nesterov,
                hyper.grad_scale,
            );
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn checkpoint_state(&self) -> Option<String> {
        let mut w = StateWriter::new("momentum-sgd");
        w.f32_field("lr", self.lr);
        w.f32_field("momentum", self.momentum);
        w.field("nesterov", self.nesterov);
        write_dim(&mut w, "dim", self.dim);
        w.f32_slice("velocity", &self.velocity.flatten(0));
        Some(w.finish())
    }

    fn restore_checkpoint(&mut self, text: &str) -> Result<(), OptStateError> {
        let r = StateReader::new(text, "momentum-sgd")?;
        self.lr = r.f32("lr")?;
        self.momentum = r.f32("momentum")?;
        self.nesterov = r.parse("nesterov")?;
        self.dim = r.dim("dim")?;
        let velocity = r.f32_vec("velocity")?;
        self.velocity = ShardedState::new(1);
        if !velocity.is_empty() {
            self.velocity.load_full(vec![velocity]);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        if self.nesterov {
            "nesterov-sgd"
        } else {
            "momentum-sgd"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_single_step_algebra() {
        let mut opt = Sgd::new(0.5);
        let mut x = vec![1.0, -2.0];
        opt.step(&mut x, &[2.0, 2.0]);
        assert_eq!(x, vec![0.0, -3.0]);
    }

    #[test]
    fn momentum_matches_polyak_recurrence() {
        // Verify v-form equals the paper's x_{t+1} = x_t - lr g + mu (x_t - x_{t-1}).
        let (lr, mu) = (0.1f32, 0.8f32);
        let grad_fn = |x: f32| 2.0 * x; // f = x^2
        let mut opt = MomentumSgd::new(lr, mu);
        let mut x = vec![1.0f32];
        let manual = 1.0f32;
        // First step has no momentum history.
        opt.step(&mut x, &[grad_fn(manual)]);
        let m_next = manual - lr * grad_fn(manual);
        let (mut manual_prev, mut manual) = (manual, m_next);
        assert!((x[0] - manual).abs() < 1e-6);
        for _ in 0..20 {
            opt.step(&mut x, &[grad_fn(manual)]);
            let m_next = manual - lr * grad_fn(manual) + mu * (manual - manual_prev);
            (manual_prev, manual) = (manual, m_next);
            assert!((x[0] - manual).abs() < 1e-5, "{} vs {manual}", x[0]);
        }
    }

    #[test]
    fn momentum_accelerates_on_ill_conditioned_quadratic() {
        // With condition number 100, tuned momentum converges much faster
        // than tuned plain gradient descent — the premise of Section 2.
        let h = [1.0f32, 100.0];
        let run = |mut opt: Box<dyn Optimizer>, iters: usize| -> f32 {
            let mut x = vec![1.0f32, 1.0];
            for _ in 0..iters {
                let g: Vec<f32> = x.iter().zip(h.iter()).map(|(&x, &h)| h * x).collect();
                opt.step(&mut x, &g);
            }
            (x[0] * x[0] + x[1] * x[1]).sqrt()
        };
        // Optimal plain GD rate: lr = 2/(h_min + h_max).
        let gd = run(Box::new(Sgd::new(2.0 / 101.0)), 200);
        // Optimal momentum per Eq. 2: mu* = ((sqrt(k)-1)/(sqrt(k)+1))^2.
        let kappa = 100.0f32;
        let mu = ((kappa.sqrt() - 1.0) / (kappa.sqrt() + 1.0)).powi(2);
        let lr = (1.0 + mu.sqrt()).powi(2) / 100.0;
        let mom = run(Box::new(MomentumSgd::new(lr, mu)), 200);
        assert!(
            mom < gd * 1e-3,
            "momentum should be far ahead: momentum {mom} vs gd {gd}"
        );
    }

    #[test]
    fn nesterov_converges_with_high_momentum() {
        let mut opt = MomentumSgd::nesterov(0.05, 0.9);
        let mut x = vec![1.0f32];
        for _ in 0..300 {
            let g = vec![x[0]];
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-4);
    }

    #[test]
    fn set_momentum_takes_effect() {
        let mut opt = MomentumSgd::new(0.1, 0.9);
        opt.set_momentum(0.0);
        let mut x = vec![1.0f32];
        opt.step(&mut x, &[1.0]);
        opt.step(&mut x, &[1.0]);
        // With mu = 0 this is plain SGD: 1 - 0.1 - 0.1 = 0.8.
        assert!((x[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn velocity_accessor_reflects_state() {
        let mut opt = MomentumSgd::new(0.1, 0.9);
        assert!(opt.velocity().is_empty(), "no state before the first step");
        opt.step(&mut [1.0, 2.0], &[1.0, 1.0]);
        assert_eq!(opt.velocity(), vec![-0.1, -0.1]);
    }
}
