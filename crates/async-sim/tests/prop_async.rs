//! Property-based tests for the asynchronous simulator.

use proptest::prelude::*;
use yf_async::RoundRobinSimulator;
use yf_optim::{MomentumSgd, Optimizer, Sgd};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With one worker the simulator is bit-identical to the plain loop
    /// for any gradient source and learning rate.
    #[test]
    fn one_worker_is_synchronous(
        initial in prop::collection::vec(-5.0f32..5.0, 1..8),
        lr in 0.001f32..0.5,
        iters in 1usize..40,
    ) {
        let mut sim = RoundRobinSimulator::new(1, initial.clone());
        let mut src = (initial.len(), |x: &[f32], _| (0.0f32, x.to_vec()));
        let mut opt = Sgd::new(lr);
        sim.run(&mut src, &mut opt, iters);

        let mut x = initial;
        let mut opt2 = Sgd::new(lr);
        for _ in 0..iters {
            let g = x.clone();
            opt2.step(&mut x, &g);
        }
        prop_assert_eq!(sim.params(), x.as_slice());
    }

    /// The first `tau` steps never mutate the parameters (pipeline fill),
    /// and afterwards every step applies exactly one gradient.
    #[test]
    fn warmup_length_equals_staleness(
        workers in 1usize..12,
        iters in 1usize..40,
    ) {
        let tau = workers - 1;
        let mut sim = RoundRobinSimulator::new(workers, vec![1.0f32]);
        let mut src = (1usize, |x: &[f32], _| (0.0f32, x.to_vec()));
        let mut opt = Sgd::new(0.1);
        let records = sim.run(&mut src, &mut opt, iters);
        for (t, r) in records.iter().enumerate() {
            if t < tau {
                prop_assert_eq!(r.grad_norm, 0.0, "warmup step {} applied a gradient", t);
            } else {
                prop_assert!(r.grad_norm > 0.0, "step {} applied nothing", t);
            }
        }
    }

    /// The gradient applied at step t was computed on the snapshot from
    /// step t - tau: feeding a source that returns the step number as the
    /// "gradient" exposes the bookkeeping directly.
    #[test]
    fn staleness_is_exact(workers in 1usize..10, iters in 10usize..50) {
        let tau = workers - 1;
        // Gradient = the step at which it was computed (encoded in f32).
        let mut src = (1usize, |_: &[f32], step: u64| (0.0f32, vec![step as f32]));
        struct Recorder(Vec<f32>);
        impl Optimizer for Recorder {
            fn observe(&mut self, _p: &[f32], g: &[f32]) -> yf_optim::Hyper {
                self.0.push(g[0]);
                yf_optim::Hyper::default()
            }
            fn step_shard(
                &self,
                _: yf_optim::ParamShard,
                _: &mut [f32],
                _: &[f32],
                _: yf_optim::Hyper,
            ) {}
            fn learning_rate(&self) -> f32 { 0.0 }
            fn set_learning_rate(&mut self, _: f32) {}
            fn name(&self) -> &'static str { "recorder" }
        }
        let mut opt = Recorder(Vec::new());
        let mut sim = RoundRobinSimulator::new(workers, vec![0.0f32]);
        sim.run(&mut src, &mut opt, iters);
        for (k, &g) in opt.0.iter().enumerate() {
            // The k-th applied gradient was computed at step k (queue is
            // FIFO), and it is applied at step k + tau.
            prop_assert_eq!(g as usize, k, "queue order broken");
        }
        prop_assert_eq!(opt.0.len(), iters.saturating_sub(tau));
    }

    /// Applying updates through N parallel shards is bit-identical to the
    /// whole-vector apply, for any worker count and dimension.
    #[test]
    fn sharded_apply_is_bitwise_invariant(
        workers in 1usize..6,
        shards in 2usize..6,
        dim in 1usize..12,
    ) {
        let initial: Vec<f32> = (0..dim).map(|i| 1.0 + i as f32 * 0.3).collect();
        let run = |s: usize| {
            let mut sim = RoundRobinSimulator::new(workers, initial.clone()).with_shards(s);
            let mut src = (dim, |x: &[f32], _| (0.0f32, x.to_vec()));
            let mut opt = MomentumSgd::new(0.05, 0.7);
            sim.run(&mut src, &mut opt, 40);
            sim.params().to_vec()
        };
        prop_assert_eq!(run(1), run(shards));
    }
}
