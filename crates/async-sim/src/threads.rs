//! A real multi-threaded asynchronous trainer (demonstration variant).
//!
//! Workers pull parameter snapshots, compute gradients, and send them to
//! a central applier thread over a bounded channel. Parameters are held
//! in a [`ShardedParams`]: one mutex per contiguous shard instead of one
//! whole-model lock, so a worker snapshotting shard 0 never waits for the
//! applier updating shard 3 — the applier and the workers no longer
//! serialize on a single `Mutex<Vec<f32>>`. The applier drives the fused
//! sharded optimizer API directly: one `step_fused` dispatch onto the
//! persistent worker pool runs the per-shard partial reductions, the
//! deterministic combine, and the per-shard `step_shard`s — each holding
//! only its own shard's lock — as a single fan-out per update.
//!
//! Unlike [`RoundRobinSimulator`](crate::RoundRobinSimulator) the
//! interleaving here is scheduler-dependent, so this type is used by the
//! `async_training` example rather than by the reproducible benches.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use yf_optim::{Optimizer, ParamShard};
use yf_tensor::parallel;

/// A thread-safe gradient function: maps `(params, step)` to
/// `(loss, gradient)`.
pub type SharedGradFn = Arc<dyn Fn(&[f32], u64) -> (f32, Vec<f32>) + Send + Sync>;

/// A flat parameter vector split into contiguous shards, each behind its
/// own lock. Readers lock one shard at a time, so concurrent access only
/// contends when two parties touch the *same* shard.
#[derive(Debug)]
pub struct ShardedParams {
    shards: Vec<Mutex<Vec<f32>>>,
    /// Flat offset of each shard (same length as `shards`).
    offsets: Vec<usize>,
    total: usize,
}

impl ShardedParams {
    /// Splits `initial` into up to `shards` contiguous slices.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty.
    pub fn new(initial: Vec<f32>, shards: usize) -> Self {
        assert!(!initial.is_empty(), "sharded params: empty vector");
        let total = initial.len();
        let shards = shards.clamp(1, total);
        let rows_per = parallel::chunk_rows(total, shards);
        let mut slots = Vec::new();
        let mut offsets = Vec::new();
        let mut offset = 0;
        while offset < total {
            let end = (offset + rows_per).min(total);
            slots.push(Mutex::new(initial[offset..end].to_vec()));
            offsets.push(offset);
            offset = end;
        }
        ShardedParams {
            shards: slots,
            offsets,
            total,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Flat dimension.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Stitches the current parameters into one vector, locking each
    /// shard briefly in turn. The result is consistent whenever a single
    /// applier performs all writes between its own snapshots; concurrent
    /// snapshots during an update may mix shard generations (ordinary
    /// Hogwild-style staleness, which is the point of this trainer).
    pub fn snapshot(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.total);
        for shard in &self.shards {
            out.extend_from_slice(&shard.lock().expect("params shard lock"));
        }
        out
    }

    /// Applies one optimizer step: `hyper` must come from an `observe`
    /// on this step's gradient. Each shard's lock is held only while that
    /// shard is updated.
    pub fn apply(&self, opt: &dyn Optimizer, grads: &[f32], hyper: yf_optim::Hyper) {
        assert_eq!(grads.len(), self.total, "sharded params: gradient length");
        let count = self.shards.len();
        for (i, (shard, &offset)) in self.shards.iter().zip(&self.offsets).enumerate() {
            let mut p = shard.lock().expect("params shard lock");
            let len = p.len();
            let meta = ParamShard {
                index: i,
                count,
                offset,
                total: self.total,
            };
            opt.step_shard(meta, &mut p, &grads[offset..offset + len], hyper);
        }
    }

    /// Applies one shard of an optimizer step, holding only that shard's
    /// lock. `hyper` must come from an `observe`/`combine` on this step's
    /// gradient; the fused applier fans this out over the worker pool.
    pub fn apply_shard(
        &self,
        i: usize,
        opt: &dyn Optimizer,
        grads: &[f32],
        hyper: yf_optim::Hyper,
    ) {
        assert_eq!(grads.len(), self.total, "sharded params: gradient length");
        let offset = self.offsets[i];
        let mut p = self.shards[i].lock().expect("params shard lock");
        let len = p.len();
        let meta = ParamShard {
            index: i,
            count: self.shards.len(),
            offset,
            total: self.total,
        };
        opt.step_shard(meta, &mut p, &grads[offset..offset + len], hyper);
    }
}

/// Summary of a threaded asynchronous run.
#[derive(Debug, Clone)]
pub struct ThreadedRunReport {
    /// Final parameters.
    pub params: Vec<f32>,
    /// Loss recorded per applied update, in application order.
    pub losses: Vec<f32>,
    /// Number of gradient applications.
    pub updates: usize,
}

/// Runs `workers` threads for `total_updates` gradient applications,
/// with the shared parameters split across `shards` locks.
///
/// # Panics
///
/// Panics if `workers == 0` or `total_updates == 0`. If a worker thread
/// panics (a panicking `grad_fn`), the original panic payload is
/// re-raised here rather than surfacing as an opaque channel error.
pub fn run_threaded(
    workers: usize,
    total_updates: usize,
    initial: Vec<f32>,
    grad_fn: SharedGradFn,
    opt: &mut dyn Optimizer,
    shards: usize,
) -> ThreadedRunReport {
    assert!(workers > 0, "threaded: need at least one worker");
    assert!(total_updates > 0, "threaded: need at least one update");
    let params = Arc::new(ShardedParams::new(initial, shards));
    let (tx, rx) = mpsc::sync_channel::<(f32, Vec<f32>)>(workers * 2);
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for w in 0..workers {
        let params = Arc::clone(&params);
        let grad_fn = Arc::clone(&grad_fn);
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let mut local_step = w as u64;
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let snapshot = params.snapshot();
                let (loss, grad) = grad_fn(&snapshot, local_step);
                local_step += workers as u64;
                // The applier may have exited already; stop quietly then.
                if tx.send((loss, grad)).is_err() {
                    break;
                }
            }
        }));
    }
    drop(tx);

    let mut losses = Vec::with_capacity(total_updates);
    for _ in 0..total_updates {
        let (loss, grad) = match rx.recv() {
            Ok(update) => update,
            Err(_) => {
                // Every worker exited before the run finished — almost
                // certainly a panicking `grad_fn`. Join them and re-raise
                // the original cause instead of an opaque channel error.
                stop.store(true, Ordering::Relaxed);
                let mut cause = None;
                for h in std::mem::take(&mut handles) {
                    if let Err(payload) = h.join() {
                        cause.get_or_insert(payload);
                    }
                }
                match cause {
                    Some(payload) => std::panic::resume_unwind(payload),
                    None => panic!(
                        "threaded: workers exited after {} of {total_updates} updates",
                        losses.len()
                    ),
                }
            }
        };
        // Measure on a consistent applier-side snapshot, combine, and
        // apply per shard — one fused pool dispatch per update, the
        // applier's serial phase shrinks to the scalar combine; workers
        // keep reading other shards in the meantime.
        let snapshot = params.snapshot();
        let n = params.shard_count();
        yf_optim::sharded::step_fused(opt, &snapshot, &grad, n, n, |i, opt, hyper| {
            params.apply_shard(i, opt, &grad, hyper)
        });
        losses.push(loss);
    }
    stop.store(true, Ordering::Relaxed);
    // Drain so blocked senders can observe the stop flag and exit.
    while rx.try_recv().is_ok() {}
    drop(rx);
    for h in handles {
        if let Err(payload) = h.join() {
            // Keep the worker's own panic message.
            std::panic::resume_unwind(payload);
        }
    }
    let final_params = params.snapshot();
    ThreadedRunReport {
        params: final_params,
        updates: losses.len(),
        losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yf_optim::{MomentumSgd, Sgd};

    #[test]
    fn threaded_training_converges_on_quadratic() {
        let grad_fn: SharedGradFn = Arc::new(|x: &[f32], _| {
            let loss: f32 = x.iter().map(|v| 0.5 * v * v).sum();
            (loss, x.to_vec())
        });
        let mut opt = Sgd::new(0.05);
        let report = run_threaded(4, 400, vec![1.0f32; 8], grad_fn, &mut opt, 4);
        assert_eq!(report.updates, 400);
        let dist: f32 = report.params.iter().map(|p| p * p).sum::<f32>().sqrt();
        assert!(dist < 0.1, "distance {dist}");
    }

    #[test]
    fn sharded_locks_match_single_lock_with_stateful_optimizer() {
        // A parameter-independent gradient makes the applied sequence
        // deterministic regardless of thread interleaving, so a 1-shard
        // and a 3-shard run must agree bit-for-bit even for an optimizer
        // with per-shard state.
        let run = |shards: usize| {
            let grad_fn: SharedGradFn = Arc::new(|x: &[f32], _| (0.0, vec![0.25; x.len()]));
            let mut opt = MomentumSgd::new(0.05, 0.8);
            run_threaded(2, 60, vec![1.0f32; 7], grad_fn, &mut opt, shards).params
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn single_worker_still_works() {
        let grad_fn: SharedGradFn = Arc::new(|x: &[f32], _| (0.0, x.to_vec()));
        let mut opt = Sgd::new(0.1);
        let report = run_threaded(1, 50, vec![1.0f32], grad_fn, &mut opt, 1);
        assert!(report.params[0] < 1.0);
    }

    #[test]
    fn shard_count_is_clamped_to_dimension() {
        let p = ShardedParams::new(vec![0.0; 3], 8);
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.snapshot().len(), 3);
    }

    #[test]
    #[should_panic(expected = "injected grad failure")]
    fn worker_panics_surface_their_original_cause() {
        // All workers panic immediately; the applier must re-raise the
        // grad_fn's own message, not an opaque channel-recv error.
        let grad_fn: SharedGradFn = Arc::new(|_: &[f32], _| panic!("injected grad failure"));
        let mut opt = Sgd::new(0.1);
        run_threaded(2, 10, vec![1.0], grad_fn, &mut opt, 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let grad_fn: SharedGradFn = Arc::new(|x: &[f32], _| (0.0, x.to_vec()));
        let mut opt = Sgd::new(0.1);
        run_threaded(0, 1, vec![1.0], grad_fn, &mut opt, 1);
    }
}
