//! A real multi-threaded asynchronous trainer (demonstration variant).
//!
//! Workers pull parameter snapshots, compute gradients, and send them to
//! a central applier thread over a bounded channel; the applier updates
//! the shared parameters under a mutex. Unlike
//! [`RoundRobinSimulator`](crate::RoundRobinSimulator) the interleaving
//! here is scheduler-dependent, so this type is used by the
//! `async_training` example rather than by the reproducible benches.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use yf_optim::Optimizer;

/// A thread-safe gradient function: maps `(params, step)` to
/// `(loss, gradient)`.
pub type SharedGradFn = Arc<dyn Fn(&[f32], u64) -> (f32, Vec<f32>) + Send + Sync>;

/// Summary of a threaded asynchronous run.
#[derive(Debug, Clone)]
pub struct ThreadedRunReport {
    /// Final parameters.
    pub params: Vec<f32>,
    /// Loss recorded per applied update, in application order.
    pub losses: Vec<f32>,
    /// Number of gradient applications.
    pub updates: usize,
}

/// Runs `workers` threads for `total_updates` gradient applications.
///
/// # Panics
///
/// Panics if `workers == 0` or `total_updates == 0`, or if a worker
/// thread panics.
pub fn run_threaded(
    workers: usize,
    total_updates: usize,
    initial: Vec<f32>,
    grad_fn: SharedGradFn,
    opt: &mut dyn Optimizer,
) -> ThreadedRunReport {
    assert!(workers > 0, "threaded: need at least one worker");
    assert!(total_updates > 0, "threaded: need at least one update");
    let params = Arc::new(Mutex::new(initial));
    let (tx, rx) = mpsc::sync_channel::<(f32, Vec<f32>)>(workers * 2);
    let stop = Arc::new(Mutex::new(false));

    let mut handles = Vec::new();
    for w in 0..workers {
        let params = Arc::clone(&params);
        let grad_fn = Arc::clone(&grad_fn);
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let mut local_step = w as u64;
            loop {
                if *stop.lock().expect("stop lock") {
                    break;
                }
                let snapshot = params.lock().expect("params lock").clone();
                let (loss, grad) = grad_fn(&snapshot, local_step);
                local_step += workers as u64;
                // The applier may have exited already; stop quietly then.
                if tx.send((loss, grad)).is_err() {
                    break;
                }
            }
        }));
    }
    drop(tx);

    let mut losses = Vec::with_capacity(total_updates);
    for _ in 0..total_updates {
        let (loss, grad) = rx.recv().expect("workers alive while updates remain");
        let mut p = params.lock().expect("params lock");
        opt.step(&mut p, &grad);
        losses.push(loss);
    }
    *stop.lock().expect("stop lock") = true;
    // Drain so blocked senders can observe the stop flag and exit.
    while rx.try_recv().is_ok() {}
    drop(rx);
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    let final_params = params.lock().expect("params lock").clone();
    ThreadedRunReport {
        params: final_params,
        updates: losses.len(),
        losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yf_optim::Sgd;

    #[test]
    fn threaded_training_converges_on_quadratic() {
        let grad_fn: SharedGradFn = Arc::new(|x: &[f32], _| {
            let loss: f32 = x.iter().map(|v| 0.5 * v * v).sum();
            (loss, x.to_vec())
        });
        let mut opt = Sgd::new(0.05);
        let report = run_threaded(4, 400, vec![1.0f32; 8], grad_fn, &mut opt);
        assert_eq!(report.updates, 400);
        let dist: f32 = report.params.iter().map(|p| p * p).sum::<f32>().sqrt();
        assert!(dist < 0.1, "distance {dist}");
    }

    #[test]
    fn single_worker_still_works() {
        let grad_fn: SharedGradFn = Arc::new(|x: &[f32], _| (0.0, x.to_vec()));
        let mut opt = Sgd::new(0.1);
        let report = run_threaded(1, 50, vec![1.0f32], grad_fn, &mut opt);
        assert!(report.params[0] < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let grad_fn: SharedGradFn = Arc::new(|x: &[f32], _| (0.0, x.to_vec()));
        let mut opt = Sgd::new(0.1);
        run_threaded(0, 1, vec![1.0], grad_fn, &mut opt);
    }
}
