//! Asynchronous (stale-gradient) training simulation.
//!
//! Section 5.2 of the paper evaluates asynchrony with a deliberately
//! controlled protocol: "we run 16 asynchronous workers on a single
//! machine and force them to update the model in a round-robin fashion,
//! i.e. the gradient is delayed for 15 iterations." [`RoundRobinSimulator`]
//! implements exactly that protocol deterministically — the gradient
//! applied at step `t` was computed on the parameter snapshot of step
//! `t - tau` — so Figures 1 (right), 4 and 10 are bit-reproducible.
//!
//! [`threads`] contains a real multi-threaded Hogwild-style variant with
//! per-shard parameter locks for demonstration; the simulator is what the
//! benches use.

pub mod threads;

use std::collections::VecDeque;
use yf_optim::Optimizer;

/// A source of (possibly minibatch) gradients for a parameter vector.
///
/// `step` is the global iteration counter; implementations typically use
/// it (or internal RNG state) to pick a minibatch.
pub trait GradSource {
    /// Returns `(loss, gradient)` evaluated at `params`.
    fn grad(&mut self, params: &[f32], step: u64) -> (f32, Vec<f32>);

    /// Dimensionality of the parameter vector.
    fn dim(&self) -> usize;
}

/// Blanket implementation so closures can act as gradient sources.
impl<F> GradSource for (usize, F)
where
    F: FnMut(&[f32], u64) -> (f32, Vec<f32>),
{
    fn grad(&mut self, params: &[f32], step: u64) -> (f32, Vec<f32>) {
        (self.1)(params, step)
    }

    fn dim(&self) -> usize {
        self.0
    }
}

/// One record per iteration of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Iteration index.
    pub step: u64,
    /// Loss evaluated at the (stale) snapshot the gradient used.
    pub loss: f32,
    /// Global norm of the applied gradient.
    pub grad_norm: f32,
}

/// The paper's round-robin asynchronous protocol.
///
/// With `workers` equal workers, each gradient is applied
/// `tau = workers - 1` steps after the snapshot it was computed on.
/// `workers = 1` recovers fully synchronous training (and is
/// bit-identical to calling the optimizer in a plain loop).
#[derive(Debug)]
pub struct RoundRobinSimulator {
    staleness: usize,
    /// Pending gradients, oldest first; each entry is `(loss, grad)`.
    queue: VecDeque<(f32, Vec<f32>)>,
    /// Parameter snapshots awaiting their gradient.
    params: Vec<f32>,
    step: u64,
    /// Parallel shards for the apply phase (1 = whole-vector apply).
    shards: usize,
}

impl RoundRobinSimulator {
    /// Creates a simulator for `workers` round-robin workers starting
    /// from `initial` parameters.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `initial` is empty.
    pub fn new(workers: usize, initial: Vec<f32>) -> Self {
        assert!(workers > 0, "round robin: need at least one worker");
        assert!(!initial.is_empty(), "round robin: empty parameter vector");
        RoundRobinSimulator {
            staleness: workers - 1,
            queue: VecDeque::with_capacity(workers),
            params: initial,
            step: 0,
            shards: 1,
        }
    }

    /// Applies updates as `shards` parallel slices (one `observe`, N
    /// `step_shard`s). Updates are per-coordinate, so the trajectory is
    /// bit-identical for every shard count — this only changes how the
    /// apply phase is scheduled.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Gradient staleness `tau = workers - 1`.
    pub fn staleness(&self) -> usize {
        self.staleness
    }

    /// Current parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Iterations completed.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Runs one iteration: computes a gradient at the *current* snapshot
    /// (enqueueing it), pops the gradient computed `tau` steps ago, and
    /// applies it with `opt`. During the first `tau` steps the pipeline
    /// is filling, so no update is applied (mirroring a real async warmup)
    /// and the returned record reports the fresh loss with zero norm.
    pub fn step(&mut self, source: &mut dyn GradSource, opt: &mut dyn Optimizer) -> StepRecord {
        let (loss, grad) = source.grad(&self.params, self.step);
        self.queue.push_back((loss, grad));
        let record = if self.queue.len() > self.staleness {
            let (stale_loss, stale_grad) = self.queue.pop_front().expect("queue non-empty");
            let norm = yf_optim::clip::global_norm(&stale_grad);
            yf_optim::sharded::step_sharded(opt, &mut self.params, &stale_grad, self.shards);
            StepRecord {
                step: self.step,
                loss: stale_loss,
                grad_norm: norm,
            }
        } else {
            StepRecord {
                step: self.step,
                loss,
                grad_norm: 0.0,
            }
        };
        self.step += 1;
        record
    }

    /// Runs `iters` iterations, returning the per-step records.
    pub fn run(
        &mut self,
        source: &mut dyn GradSource,
        opt: &mut dyn Optimizer,
        iters: usize,
    ) -> Vec<StepRecord> {
        (0..iters).map(|_| self.step(source, opt)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yf_optim::Sgd;

    /// Quadratic f = |x|^2 / 2 as a gradient source.
    // The `(dim, closure)` tuple IS the GradSource impl; an alias can't
    // name the `impl Trait` half of it on stable.
    #[allow(clippy::type_complexity)]
    fn quadratic(dim: usize) -> (usize, impl FnMut(&[f32], u64) -> (f32, Vec<f32>)) {
        (dim, move |params: &[f32], _| {
            let loss: f32 = params.iter().map(|p| 0.5 * p * p).sum();
            (loss, params.to_vec())
        })
    }

    #[test]
    fn single_worker_equals_synchronous_loop() {
        let initial = vec![1.0f32, -2.0, 0.5];
        let mut sim = RoundRobinSimulator::new(1, initial.clone());
        let mut src = quadratic(3);
        let mut opt = Sgd::new(0.1);
        sim.run(&mut src, &mut opt, 25);

        // Reference: plain synchronous loop.
        let mut x = initial;
        let mut opt2 = Sgd::new(0.1);
        for _ in 0..25 {
            let g = x.clone();
            opt2.step(&mut x, &g);
        }
        assert_eq!(sim.params(), x.as_slice(), "tau = 0 must be bit-identical");
    }

    #[test]
    fn staleness_delays_application_exactly_tau_steps() {
        // With tau = 3, the first update must happen at step 3 and use
        // the gradient of the *initial* parameters.
        let initial = vec![10.0f32];
        let mut sim = RoundRobinSimulator::new(4, initial);
        let mut src = quadratic(1);
        let mut opt = Sgd::new(0.1);
        for t in 0..3 {
            let rec = sim.step(&mut src, &mut opt);
            assert_eq!(rec.grad_norm, 0.0, "no update during warmup step {t}");
            assert_eq!(sim.params(), &[10.0]);
        }
        let rec = sim.step(&mut src, &mut opt);
        assert_eq!(rec.grad_norm, 10.0, "first applied gradient is g(x_0)");
        assert!((sim.params()[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn async_sgd_still_converges_with_small_lr() {
        let mut sim = RoundRobinSimulator::new(8, vec![1.0f32; 4]);
        let mut src = quadratic(4);
        let mut opt = Sgd::new(0.05);
        sim.run(&mut src, &mut opt, 500);
        let dist: f32 = sim.params().iter().map(|p| p * p).sum::<f32>().sqrt();
        assert!(dist < 1e-2, "distance {dist}");
    }

    #[test]
    fn async_sgd_diverges_with_large_lr_where_sync_survives() {
        // Staleness shrinks the stability region: a learning rate that is
        // stable synchronously (lr < 2/h = 2) can oscillate or diverge
        // under tau = 7.
        let run = |workers: usize| {
            let mut sim = RoundRobinSimulator::new(workers, vec![1.0f32]);
            let mut src = quadratic(1);
            let mut opt = Sgd::new(1.5);
            sim.run(&mut src, &mut opt, 200);
            sim.params()[0].abs()
        };
        let sync_dist = run(1);
        let async_dist = run(8);
        assert!(sync_dist < 1e-3, "sync converges: {sync_dist}");
        assert!(
            async_dist > 1.0 || async_dist.is_nan(),
            "async at same lr should be unstable: {async_dist}"
        );
    }

    #[test]
    fn records_report_decreasing_loss() {
        let mut sim = RoundRobinSimulator::new(4, vec![2.0f32; 3]);
        let mut src = quadratic(3);
        let mut opt = Sgd::new(0.1);
        let records = sim.run(&mut src, &mut opt, 300);
        let early: f32 = records[4..14].iter().map(|r| r.loss).sum::<f32>() / 10.0;
        let late: f32 = records[290..300].iter().map(|r| r.loss).sum::<f32>() / 10.0;
        assert!(late < early * 0.1, "late {late} vs early {early}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        RoundRobinSimulator::new(0, vec![1.0]);
    }
}
