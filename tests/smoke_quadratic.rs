//! Workspace smoke test for the paper's headline claim: YellowFin with
//! zero hand-tuning minimizes a quadratic, fast.

use yellowfin::YellowFin;
use yf_optim::Optimizer;

/// `f(x) = 0.5 * (h0 x0^2 + h1 x1^2)` with its gradient.
fn quadratic(h: [f32; 2], x: &[f32]) -> (f32, Vec<f32>) {
    let loss = 0.5 * (h[0] * x[0] * x[0] + h[1] * x[1] * x[1]);
    let grad = vec![h[0] * x[0], h[1] * x[1]];
    (loss, grad)
}

#[test]
fn default_yellowfin_tunes_2d_quadratic_below_1e3_within_500_steps() {
    let h = [1.0f32, 2.0];
    let mut x = vec![1.0f32, 1.0];
    let mut opt = YellowFin::default();
    let mut best = f32::INFINITY;
    for step in 0..500 {
        let (loss, grad) = quadratic(h, &x);
        best = best.min(loss);
        if loss < 1e-3 {
            println!("reached loss {loss:.2e} at step {step}");
            return;
        }
        opt.step(&mut x, &grad);
    }
    let (final_loss, _) = quadratic(h, &x);
    panic!("loss never dropped below 1e-3 in 500 steps (best {best:.3e}, final {final_loss:.3e})");
}
