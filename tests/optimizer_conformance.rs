//! Trait-conformance suite for the two-phase, shard-aware optimizer API.
//!
//! Every optimizer in the workspace — the yf-optim baselines, the
//! YellowFin tuner, both closed-loop controllers, and the middleware
//! wrappers — must satisfy the same contracts:
//!
//! 1. **Shard-count invariance**: the sharded measure phase (per-shard
//!    partial reductions + deterministic combine) and the parallel apply
//!    phase over N shards are bitwise identical to the one-phase `step`
//!    on a fixed-seed MLP task, for any N, including plans that change
//!    mid-run — both the trajectories and the per-step `Hyper` values.
//! 2. **State-length panics preserved**: mismatched `params`/`grads`
//!    and a flat dimension that changes between steps still panic.
//! 3. **Middleware composition**: `Clipped` and `Scheduled` wrap any
//!    optimizer, compose with the sharded drivers, and schedules no-op
//!    on self-tuning optimizers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use yellowfin::{ClosedLoopAdam, ClosedLoopYellowFin, YellowFin, YellowFinConfig};
use yf_experiments::task::{ModelTask, TrainTask};
use yf_nn::Mlp;
use yf_optim::clip::Clipped;
use yf_optim::schedule::{Schedule, Scheduled};
use yf_optim::sharded::{apply_sharded, observe_sharded, step_sharded};
use yf_optim::{AdaGrad, Adam, MomentumSgd, Optimizer, RmsProp, Sgd};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

type OptFactory = (&'static str, fn() -> Box<dyn Optimizer>);

/// Every optimizer in the workspace, including middleware-wrapped ones.
fn all_optimizers() -> Vec<OptFactory> {
    vec![
        ("sgd", || Box::new(Sgd::new(0.1))),
        ("momentum-sgd", || Box::new(MomentumSgd::new(0.05, 0.9))),
        ("nesterov-sgd", || {
            Box::new(MomentumSgd::nesterov(0.05, 0.9))
        }),
        ("adam", || Box::new(Adam::new(0.01))),
        ("adagrad", || Box::new(AdaGrad::new(0.1))),
        ("rmsprop", || Box::new(RmsProp::new(0.01))),
        ("yellowfin", || Box::new(YellowFin::default())),
        ("yellowfin-adaptive-clip", || {
            Box::new(YellowFin::new(YellowFinConfig {
                clip: yellowfin::ClipMode::Adaptive,
                ..Default::default()
            }))
        }),
        ("closed-loop-yellowfin", || {
            Box::new(ClosedLoopYellowFin::new(
                YellowFinConfig::default(),
                3,
                0.01,
            ))
        }),
        ("closed-loop-adam", || {
            Box::new(ClosedLoopAdam::new(0.01, 0.9, 3, 0.01))
        }),
        ("clipped-momentum", || {
            Box::new(Clipped::new(MomentumSgd::new(0.05, 0.9), 0.5))
        }),
        ("clipped-yellowfin", || {
            // Middleware clipping around a measuring optimizer: the
            // clip factor must reach the tuner's measurements through
            // the nested-partial channel, not a gradient copy.
            Box::new(Clipped::new(YellowFin::default(), 0.5))
        }),
        ("scheduled-clipped-adam", || {
            Box::new(Scheduled::new(
                Clipped::new(Adam::new(0.01), 1.0),
                Schedule::EveryEpoch { factor: 0.9 },
            ))
        }),
    ]
}

/// A small fixed-seed MLP classification task (42 parameters).
fn mlp_task(seed: u64) -> ModelTask<Mlp> {
    let mut rng = Pcg32::seed(seed);
    let mlp = Mlp::new(&[2, 8, 2], &mut rng);
    let mut data_rng = Pcg32::seed(seed + 1);
    ModelTask::new(
        mlp,
        move |_| {
            let x = Tensor::randn(&[8, 2], &mut data_rng);
            let y = (0..8)
                .map(|r| usize::from(x.at(&[r, 0]) + x.at(&[r, 1]) > 0.0))
                .collect();
            (x, y)
        },
        |_| 0.0,
        "none",
        false,
    )
}

/// Runs `steps` iterations on the fixed-seed MLP, applying each update
/// through `shards_for(step)` parallel shards (0 = one-phase `step`).
fn run_mlp(opt: &mut dyn Optimizer, steps: usize, shards_for: impl Fn(usize) -> usize) -> Vec<f32> {
    let mut task = mlp_task(77);
    let mut params = task.init_params();
    for step in 0..steps {
        let (_, grad) = task.loss_grad_at(&params, step as u64);
        match shards_for(step) {
            0 => opt.step(&mut params, &grad),
            n => step_sharded(opt, &mut params, &grad, n),
        }
    }
    params
}

#[test]
fn sharded_apply_is_bitwise_identical_to_step() {
    for (name, make) in all_optimizers() {
        let baseline = run_mlp(make().as_mut(), 60, |_| 0);
        for shards in [1usize, 2, 4] {
            let sharded = run_mlp(make().as_mut(), 60, |_| shards);
            assert_eq!(
                baseline, sharded,
                "{name}: {shards}-shard apply diverged from step()"
            );
        }
    }
}

#[test]
fn sharded_observe_is_bitwise_identical_to_whole_vector_observe() {
    // The measure phase alone: at every step, `observe_sharded` over
    // 1/2/4/7 block-aligned shards must return exactly the Hyper the
    // whole-vector `observe` returns, and the optimizer state it leaves
    // behind must drive an identical trajectory.
    for (name, make) in all_optimizers() {
        for shards in [1usize, 2, 4, 7] {
            let mut task_a = mlp_task(77);
            let mut task_b = mlp_task(77);
            let mut a = make();
            let mut b = make();
            let mut xa = task_a.init_params();
            let mut xb = task_b.init_params();
            for step in 0..60 {
                let (_, ga) = task_a.loss_grad_at(&xa, step as u64);
                let (_, gb) = task_b.loss_grad_at(&xb, step as u64);
                let ha = a.observe(&xa, &ga);
                let hb = observe_sharded(b.as_mut(), &xb, &gb, shards);
                assert_eq!(
                    ha, hb,
                    "{name}: step {step}, {shards}-shard observe returned a different Hyper"
                );
                apply_sharded(a.as_ref(), &mut xa, &ga, ha, 1);
                apply_sharded(b.as_ref(), &mut xb, &gb, hb, 2);
            }
            assert_eq!(xa, xb, "{name}: {shards}-shard observe diverged");
        }
    }
}

#[test]
fn multi_block_sharded_observe_merges_partials_bitwise() {
    // A dimension spanning several reduction blocks (4 blocks + a ragged
    // tail at BLOCK = 1024), so the sharded measure phase genuinely
    // splits the gradient and `combine` merges real partial sequences.
    let dim = 4100;
    for (name, make) in all_optimizers() {
        let baseline = {
            let mut opt = make();
            let mut x: Vec<f32> = (0..dim).map(|i| ((i as f32) * 0.37).sin()).collect();
            for _ in 0..12 {
                let g: Vec<f32> = x.iter().map(|&v| 0.5 * v).collect();
                opt.step(&mut x, &g);
            }
            x
        };
        for shards in [2usize, 3, 4, 7] {
            let mut opt = make();
            let mut x: Vec<f32> = (0..dim).map(|i| ((i as f32) * 0.37).sin()).collect();
            for _ in 0..12 {
                let g: Vec<f32> = x.iter().map(|&v| 0.5 * v).collect();
                step_sharded(opt.as_mut(), &mut x, &g, shards);
            }
            assert_eq!(
                baseline, x,
                "{name}: multi-block {shards}-shard run diverged from step()"
            );
        }
    }
}

#[test]
fn shard_plan_changes_mid_run_preserve_state() {
    // 1 shard for 20 steps, then 4, then 2: ShardedState must re-plan
    // without losing per-coordinate state.
    for (name, make) in all_optimizers() {
        let baseline = run_mlp(make().as_mut(), 60, |_| 0);
        let replanned = run_mlp(make().as_mut(), 60, |step| match step {
            0..=19 => 1,
            20..=39 => 4,
            _ => 2,
        });
        assert_eq!(baseline, replanned, "{name}: re-sharding changed the run");
    }
}

#[test]
fn length_mismatch_panics_for_every_optimizer() {
    for (name, make) in all_optimizers() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut opt = make();
            opt.step(&mut [0.0], &[0.0, 0.0]);
        }));
        assert!(result.is_err(), "{name}: accepted mismatched lengths");
    }
}

#[test]
fn dimension_change_panics_for_every_optimizer() {
    for (name, make) in all_optimizers() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut opt = make();
            opt.step(&mut [0.5], &[1.0]);
            opt.step(&mut [0.5, 0.5], &[1.0, 1.0]);
        }));
        assert!(result.is_err(), "{name}: accepted a dimension change");
        let msg = result
            .unwrap_err()
            .downcast::<String>()
            .map(|s| *s)
            .unwrap_or_default();
        assert!(
            msg.contains("chang"),
            "{name}: panic message should mention the changed count, got: {msg}"
        );
    }
}

#[test]
fn clipped_composes_with_sharded_apply() {
    // A huge gradient through Clipped(Sgd) must produce a unit-norm step
    // whether applied whole or in shards (the clip factor rides in
    // Hyper::grad_scale).
    let run = |shards: usize| {
        let mut opt = Clipped::new(Sgd::new(1.0), 1.0);
        let mut x = vec![0.0f32; 6];
        let g = vec![300.0f32; 6];
        step_sharded(&mut opt, &mut x, &g, shards);
        x
    };
    let whole = run(1);
    let norm: f32 = whole.iter().map(|v| v * v).sum::<f32>().sqrt();
    assert!((norm - 1.0).abs() < 1e-5, "clipped step norm {norm}");
    assert_eq!(whole, run(3), "clip scale must shard losslessly");
}

#[test]
fn schedules_noop_on_self_tuning_optimizers() {
    // Warm a tuner up, then apply a decay schedule: the effective
    // learning rate must be exactly what the tuner chose.
    let mut opt = YellowFin::default();
    let mut x = vec![1.0f32, -1.0];
    for _ in 0..50 {
        let g = x.clone();
        opt.step(&mut x, &g);
    }
    let tuned = opt.learning_rate();
    Schedule::EveryEpoch { factor: 0.5 }.apply(&mut opt, tuned, 7);
    assert_eq!(
        opt.learning_rate(),
        tuned,
        "schedule must not fight the tuner"
    );
    assert!(opt.is_self_tuning());

    // The middleware form inherits the no-op through the wrapper chain.
    let mut wrapped = Scheduled::new(
        Clipped::new(
            ClosedLoopYellowFin::new(YellowFinConfig::default(), 0, 0.01),
            10.0,
        ),
        Schedule::EveryEpoch { factor: 0.5 },
    );
    assert!(wrapped.is_self_tuning());
    let before = wrapped.learning_rate();
    wrapped.set_epoch(3);
    assert_eq!(wrapped.learning_rate(), before);
}

#[test]
fn scheduled_middleware_decays_plain_optimizers_in_training() {
    let mut opt = Scheduled::new(
        Clipped::new(MomentumSgd::new(1.0, 0.0), 1e6),
        Schedule::EveryEpoch { factor: 0.5 },
    );
    let mut x = vec![0.0f32];
    for epoch in 0..3 {
        opt.set_epoch(epoch);
        opt.step(&mut x, &[1.0]);
    }
    // Steps applied: 1.0, 0.5, 0.25.
    assert!((x[0] + 1.75).abs() < 1e-6, "got {}", x[0]);
}
