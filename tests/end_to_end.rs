//! Cross-crate integration tests: every workload trains end to end,
//! YellowFin behaves as the paper claims, and runs are deterministic.

use yellowfin::{ClosedLoopYellowFin, YellowFin, YellowFinConfig};
use yf_experiments::smoothing::smooth;
use yf_experiments::trainer::{train, train_async, RunConfig};
use yf_experiments::workloads;
use yf_optim::{MomentumSgd, Optimizer};

fn final_smoothed(losses: &[f32]) -> f64 {
    *smooth(losses, 20).last().expect("non-empty run")
}

#[test]
fn yellowfin_trains_every_workload() {
    let builders: Vec<(&str, workloads::TaskBuilder, usize)> = vec![
        (
            "cifar10",
            workloads::cifar10_like as workloads::TaskBuilder,
            400,
        ),
        ("cifar100", workloads::cifar100_like, 400),
        ("ptb", workloads::ptb_like, 700),
        ("ts", workloads::ts_like, 700),
        ("wsj", workloads::wsj_like, 700),
        ("seq2seq", |s| workloads::translation_like(s, 1.0), 700),
    ];
    for (name, make, iters) in builders {
        let mut task = make(1);
        let mut opt = YellowFin::default();
        let result = train(task.as_mut(), &mut opt, &RunConfig::plain(iters));
        let early: f64 = result.losses[..20]
            .iter()
            .map(|&l| f64::from(l))
            .sum::<f64>()
            / 20.0;
        let late = final_smoothed(&result.losses);
        assert!(
            late < early,
            "{name}: YellowFin failed to reduce loss ({early:.4} -> {late:.4})"
        );
        assert!(
            result.final_params.iter().all(|p| p.is_finite()),
            "{name}: non-finite parameters"
        );
    }
}

#[test]
fn yellowfin_beats_misspecified_momentum_sgd() {
    // The headline promise: no tuning required. Against a momentum SGD
    // whose lr is off by 100x in either direction, YF must win easily.
    let run = |opt: &mut dyn Optimizer| {
        let mut task = workloads::ts_like(2);
        let r = train(task.as_mut(), opt, &RunConfig::plain(700));
        final_smoothed(&r.losses)
    };
    let yf = run(&mut YellowFin::default());
    let tiny = run(&mut MomentumSgd::new(1e-4, 0.9));
    let huge = run(&mut MomentumSgd::new(10.0, 0.9));
    assert!(
        yf < tiny && (yf < huge || !huge.is_finite()),
        "yf {yf} vs tiny-lr {tiny} vs huge-lr {huge}"
    );
}

#[test]
fn closed_loop_tracks_target_momentum_under_staleness() {
    let workers = 8;
    let mut task = workloads::cifar100_like(3);
    let mut opt = ClosedLoopYellowFin::new(YellowFinConfig::default(), workers - 1, 0.01);
    let result = train_async(task.as_mut(), &mut opt, workers, &RunConfig::plain(500));
    assert!(result.final_params.iter().all(|p| p.is_finite()));
    let total = opt.total_momentum().expect("estimator warmed up");
    let target = opt.target_momentum();
    // The controller must have moved algorithmic momentum *below* the
    // target (it absorbs asynchrony-induced momentum)...
    assert!(
        opt.algorithmic_momentum() < target,
        "algorithmic {} vs target {}",
        opt.algorithmic_momentum(),
        target
    );
    // ...and the measured total momentum should sit near the target, far
    // closer than the open-loop gap.
    assert!(
        (total - target).abs() < 0.35,
        "total {total} vs target {target}"
    );
}

#[test]
fn training_is_bit_deterministic() {
    let run = || {
        let mut task = workloads::ptb_like(5);
        let mut opt = YellowFin::default();
        train(task.as_mut(), &mut opt, &RunConfig::plain(60)).losses
    };
    assert_eq!(run(), run(), "same seed must give identical curves");
}

#[test]
fn async_one_worker_equals_sync_for_yellowfin() {
    let mut t1 = workloads::ts_like(6);
    let mut t2 = workloads::ts_like(6);
    let mut o1 = YellowFin::default();
    let mut o2 = YellowFin::default();
    let sync = train(t1.as_mut(), &mut o1, &RunConfig::plain(80));
    let async_run = train_async(t2.as_mut(), &mut o2, 1, &RunConfig::plain(80));
    assert_eq!(sync.losses, async_run.losses);
}

#[test]
fn adaptive_clipping_survives_spiky_stream() {
    // The Figure 6 scenario at test scale: periodic 300x gradient spikes.
    let mut task = workloads::exploding_lstm_like(4);
    let mut params = task.init_params();
    let mut opt = YellowFin::new(YellowFinConfig {
        clip: yellowfin::ClipMode::Adaptive,
        ..Default::default()
    });
    for step in 0..260u64 {
        let (_, mut grad) = task.loss_grad_at(&params, step);
        if step % 50 == 49 {
            for g in &mut grad {
                *g *= 300.0;
            }
        }
        opt.step(&mut params, &grad);
        assert!(
            params.iter().all(|p| p.is_finite()),
            "diverged at step {step}"
        );
    }
}
