//! Integration tests for the evaluation protocol itself: the speedup
//! computation, grid search and smoothing behave like Section 5.1
//! describes when wired to real training runs.

use yf_experiments::smoothing::{best_so_far, smooth};
use yf_experiments::speedup::{common_lowest, speedup_over};
use yf_experiments::trainer::{train, RunConfig};
use yf_experiments::workloads::cifar10_like;
use yf_optim::{MomentumSgd, Optimizer, Sgd};

#[test]
fn speedup_protocol_orders_real_optimizers() {
    // Momentum SGD at a good lr should reach the common lowest loss in
    // fewer iterations than plain SGD at the same lr (acceleration).
    let run = |opt: &mut dyn Optimizer| {
        let mut task = cifar10_like(8);
        let r = train(task.as_mut(), opt, &RunConfig::plain(300));
        smooth(&r.losses, 15)
    };
    let sgd_curve = run(&mut Sgd::new(0.05));
    let mom_curve = run(&mut MomentumSgd::new(0.05, 0.9));
    let s = speedup_over(&sgd_curve, &mom_curve).expect("curves overlap");
    assert!(s > 1.0, "momentum should accelerate plain SGD: {s}");
}

#[test]
fn common_lowest_is_reachable_by_both() {
    let run = |lr: f32| {
        let mut task = cifar10_like(9);
        let mut opt = MomentumSgd::new(lr, 0.9);
        let r = train(task.as_mut(), &mut opt, &RunConfig::plain(150));
        smooth(&r.losses, 15)
    };
    let a = run(0.01);
    let b = run(0.05);
    let target = common_lowest(&a, &b).expect("non-empty curves");
    assert!(a.iter().any(|&v| v <= target));
    assert!(b.iter().any(|&v| v <= target));
}

#[test]
fn validation_metric_monotone_transform() {
    let mut task = cifar10_like(10);
    let mut opt = MomentumSgd::new(0.05, 0.9);
    let r = train(
        task.as_mut(),
        &mut opt,
        &RunConfig::plain(200).with_eval(40),
    );
    let vals: Vec<f64> = r.metrics.iter().map(|&(_, v)| v).collect();
    let mono = best_so_far(&vals, false);
    for w in mono.windows(2) {
        assert!(w[1] >= w[0], "best-so-far must be monotone: {mono:?}");
    }
    assert!(mono.last().unwrap() > &0.2, "accuracy should exceed chance");
}
