//! Character-level language modeling (the paper's TinyShakespeare-style
//! workload): YellowFin vs tuned Adam on a seeded Markov-chain corpus,
//! reporting training loss and validation perplexity.
//!
//! Run with: `cargo run --release --example char_lm`

use yf_experiments::smoothing::smooth;
use yf_experiments::trainer::{train, RunConfig};
use yf_experiments::workloads::ts_like;
use yf_optim::{Adam, Optimizer};

fn main() {
    let iters = 600;
    let cfg = RunConfig::plain(iters).with_eval(100);

    println!("char-level LM (TinyShakespeare substitute), {iters} iterations\n");
    let mut rows = Vec::new();
    let mut run = |label: &str, opt: &mut dyn Optimizer| {
        let mut task = ts_like(3);
        let result = train(task.as_mut(), opt, &cfg);
        let curve = smooth(&result.losses, 20);
        let final_loss = curve.last().copied().unwrap_or(f64::NAN);
        let best_ppl = result.best_metric(true).unwrap_or(f64::NAN);
        println!(
            "{label:28} final smoothed loss = {final_loss:.4}, best val perplexity = {best_ppl:.2}"
        );
        rows.push((label.to_string(), final_loss));
    };

    run(
        "YellowFin (no tuning)",
        &mut yellowfin::YellowFin::default(),
    );
    for &lr in &[1e-3f32, 5e-3, 1e-2] {
        run(&format!("Adam lr = {lr:.0e}"), &mut Adam::new(lr));
    }

    let yf_loss = rows[0].1;
    let best_adam = rows[1..].iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    println!(
        "\nYellowFin {} the best Adam grid point ({yf_loss:.4} vs {best_adam:.4}) — \
         with zero configuration.",
        if yf_loss <= best_adam * 1.05 {
            "matches or beats"
        } else {
            "is close to"
        }
    );
}
