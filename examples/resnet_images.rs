//! Image classification with a CIFAR-style ResNet (synthetic images):
//! YellowFin vs momentum SGD at several learning rates, demonstrating
//! the robustness-to-misspecification story of the paper's Section 2.
//!
//! Run with: `cargo run --release --example resnet_images`

use yellowfin::YellowFin;
use yf_experiments::smoothing::smooth;
use yf_experiments::trainer::{train, RunConfig};
use yf_experiments::workloads::cifar10_like;
use yf_optim::{MomentumSgd, Optimizer};

fn main() {
    let iters = 400;
    let cfg = RunConfig::plain(iters).with_eval(100);

    println!("CIFAR10-style ResNet on synthetic images, {iters} iterations\n");
    let mut results = Vec::new();
    let mut run = |label: String, opt: &mut dyn Optimizer| {
        let mut task = cifar10_like(9);
        let r = train(task.as_mut(), opt, &cfg);
        let loss = smooth(&r.losses, 20).last().copied().unwrap_or(f64::NAN);
        let acc = r.best_metric(false).unwrap_or(f64::NAN);
        println!("{label:32} final loss = {loss:.4}, best val accuracy = {acc:.3}");
        results.push((label, loss));
    };

    run("YellowFin".to_string(), &mut YellowFin::default());
    for &lr in &[0.001f32, 0.01, 0.1, 1.0] {
        run(
            format!("momentum SGD lr = {lr}"),
            &mut MomentumSgd::new(lr, 0.9),
        );
    }

    println!(
        "\nnote how momentum SGD's outcome swings across the lr grid while \
         YellowFin lands near the best grid point automatically."
    );
}
