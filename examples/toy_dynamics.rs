//! The momentum-operator story of Section 2, end to end:
//! 1. the robust region — a plateau of spectral radius sqrt(mu) that
//!    widens with momentum (Figure 2);
//! 2. linear convergence on a non-convex objective with curvature
//!    varying by 1000x, tuned purely by the rule of Eq. 9 (Figure 3);
//! 3. the noisy-quadratic surrogate behind SingleStep (Lemma 5).
//!
//! Run with: `cargo run --release --example toy_dynamics`

use yellowfin::theory::{
    exact_expected_sq_distance, momentum_spectral_radius, mu_star, robust_lr_range,
};
use yf_data::toy::{Objective1d, PiecewiseQuadratic};

fn main() {
    // 1. Robust region widths.
    println!("1. momentum's robust region (h = 1): rho(A) plateaus at sqrt(mu)\n");
    for &mu in &[0.0, 0.1, 0.3, 0.5] {
        let (lo, _) = robust_lr_range(mu, 1.0, 1.0);
        let hi = (1.0 + f64::sqrt(mu)).powi(2);
        let probe = 0.5 * (lo + hi);
        println!(
            "   mu = {mu:.1}: plateau alpha in [{lo:.3}, {hi:.3}], rho at midpoint = {:.4} \
             (sqrt(mu) = {:.4})",
            momentum_spectral_radius(probe, mu, 1.0),
            mu.sqrt()
        );
    }

    // 2. Non-convex toy convergence under the Eq. 9 rule.
    println!("\n2. non-convex toy objective (curvatures 1 and 1000, GCN = 1000)\n");
    let f = PiecewiseQuadratic::figure3();
    let mu = mu_star(f.gcn());
    let alpha = (1.0 - mu.sqrt()).powi(2) / f.h_small;
    let (mut x, mut x_prev) = (15.0f64, 15.0f64);
    println!("   tuning from the GCN alone: mu = {mu:.4}, alpha = {alpha:.2e}");
    for t in 0..=400 {
        if t % 80 == 0 {
            println!("   iter {t:3}: |x - x*| = {:.3e}", x.abs());
        }
        let g = f.grad(x);
        let x_next = x - alpha * g + mu * (x - x_prev);
        x_prev = x;
        x = x_next;
    }
    println!("   predicted linear rate sqrt(mu) = {:.4}", mu.sqrt());

    // 3. Lemma 5: exact MSE of momentum SGD on a noisy quadratic.
    println!("\n3. noisy quadratic: E(x_t - x*)^2 from Lemma 5's recurrence\n");
    let (h, c, x0) = (1.5, 0.5, 2.0);
    for &(mu, alpha) in &[(0.0, 0.2), (0.5, 0.2), (0.9, 0.05)] {
        let at_20 = exact_expected_sq_distance(20, alpha, mu, h, c, x0);
        let at_200 = exact_expected_sq_distance(200, alpha, mu, h, c, x0);
        // Stationary variance: alpha^2 C / ((1-mu) ...) — the floor the
        // surrogate of Eq. 14 predicts.
        println!(
            "   mu = {mu:.1}, alpha = {alpha}: E|x-x*|^2 at t=20: {at_20:.4}, at t=200: {at_200:.4} \
             (higher momentum trades bias decay for noise amplification)"
        );
    }
}
