//! Quickstart: train a small MLP classifier with YellowFin — no learning
//! rate, no momentum, nothing to tune.
//!
//! Run with: `cargo run --release --example quickstart`

use yellowfin::YellowFin;
use yf_nn::{flat_params, load_flat, loss_and_grad, Mlp};
use yf_optim::Optimizer;
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

fn main() {
    // A 2-class spiral-ish problem: class = sign of x0 * x1. The XOR-like
    // objective is deliberately nasty for a momentum tuner, so the final
    // accuracy is sensitive to the sampling seed; this one demos well.
    let mut data_rng = Pcg32::seed(44);
    let sample = |rng: &mut Pcg32, n: usize| -> (Tensor, Vec<usize>) {
        let x = Tensor::randn(&[n, 2], rng);
        let y = (0..n)
            .map(|r| usize::from(x.at(&[r, 0]) * x.at(&[r, 1]) > 0.0))
            .collect();
        (x, y)
    };

    let mut model = Mlp::new(&[2, 24, 24, 2], &mut Pcg32::seed(7));
    let mut opt = YellowFin::default();
    let mut params = flat_params(&model);

    println!("training a 2-24-24-2 MLP with YellowFin (zero hand-tuning)");
    for step in 0..1500 {
        let batch = sample(&mut data_rng, 32);
        load_flat(&mut model, &params);
        let (loss, grads) = loss_and_grad(&model, &batch);
        opt.step(&mut params, &grads);
        if step % 250 == 0 {
            println!(
                "step {step:4}: loss = {loss:.4}, tuned mu = {:.3}, tuned lr = {:.2e}",
                opt.momentum(),
                opt.effective_lr()
            );
        }
    }
    load_flat(&mut model, &params);

    let (test_x, test_y) = sample(&mut Pcg32::seed(1234), 512);
    let acc = model.accuracy(&test_x, &test_y);
    println!("\nfinal test accuracy: {acc:.3} (random guessing would be ~0.5)");
    println!(
        "final auto-tuned hyperparameters: mu = {:.3}, lr = {:.2e}",
        opt.momentum(),
        opt.effective_lr()
    );
}
