//! Asynchronous training with closed-loop YellowFin.
//!
//! Part 1 uses the paper's deterministic round-robin protocol (16
//! workers, gradient staleness 15) to show closed-loop momentum control
//! beating open-loop YellowFin. Part 2 runs a real multi-threaded
//! Hogwild-style trainer — parameters split across per-shard locks, the
//! two-phase optimizer applying shard by shard — to show the same
//! components in actual parallel execution.
//!
//! Run with: `cargo run --release --example async_training`

use std::sync::{Arc, Mutex};
use yellowfin::{ClosedLoopYellowFin, YellowFinConfig};
use yf_async::threads::{run_threaded, SharedGradFn};
use yf_data::toy::DiagonalQuadratic;
use yf_experiments::smoothing::smooth;
use yf_experiments::trainer::{train_async, RunConfig};
use yf_experiments::workloads::cifar100_like;
use yf_optim::MomentumSgd;

const WORKERS: usize = 16;

fn main() {
    // --- Part 1: deterministic round-robin asynchrony (paper protocol) --
    println!("part 1: round-robin async (16 workers, staleness 15)\n");
    let iters = 600;
    let cfg = RunConfig::plain(iters);

    let mut open_task = cifar100_like(4);
    let mut open_opt = yellowfin::YellowFin::default();
    let open = train_async(open_task.as_mut(), &mut open_opt, WORKERS, &cfg);

    let mut closed_task = cifar100_like(4);
    let mut closed_opt = ClosedLoopYellowFin::new(YellowFinConfig::default(), WORKERS - 1, 0.01);
    let closed = train_async(closed_task.as_mut(), &mut closed_opt, WORKERS, &cfg);

    let open_final = smooth(&open.losses, 20).last().copied().unwrap_or(f64::NAN);
    let closed_final = smooth(&closed.losses, 20)
        .last()
        .copied()
        .unwrap_or(f64::NAN);
    println!("open-loop YellowFin   final smoothed loss: {open_final:.4}");
    println!("closed-loop YellowFin final smoothed loss: {closed_final:.4}");
    println!(
        "closed-loop lowered algorithmic momentum to {:.3} (target {:.3}) to absorb\n\
         asynchrony-induced momentum\n",
        closed_opt.algorithmic_momentum(),
        closed_opt.target_momentum()
    );

    // --- Part 2: real threads on a noisy quadratic ----------------------
    println!("part 2: threaded Hogwild-style training (4 OS threads, 4 param shards)\n");
    let quadratic = Arc::new(Mutex::new(DiagonalQuadratic::log_spaced(
        64, 0.5, 8.0, 0.05, 11,
    )));
    let grad_fn: SharedGradFn = Arc::new(move |x: &[f32], _| {
        let mut q = quadratic.lock().expect("objective lock");
        let loss = q.loss(x) as f32;
        (loss, q.grad(x))
    });
    // Under real-thread staleness, high algorithmic momentum destabilizes
    // (the very effect Section 4 compensates for), so the fixed-momentum
    // baseline here runs with modest constants.
    let mut opt = MomentumSgd::new(0.005, 0.5);
    let report = run_threaded(4, 2000, vec![1.0f32; 64], grad_fn, &mut opt, 4);
    let early: f32 = report.losses[..50].iter().sum::<f32>() / 50.0;
    let late: f32 = report.losses[report.updates - 50..].iter().sum::<f32>() / 50.0;
    println!(
        "applied {} asynchronous updates across 4 threads",
        report.updates
    );
    println!("loss: {early:.4} (first 50 updates) -> {late:.6} (last 50 updates)");
}
